"""Tests for the differential-testing subsystem (repro.qa).

The pyramid's top: the generators are deterministic, the differential
runner and metamorphic oracles stay clean on trunk, every cross-check
fires on a crafted violation, the ddmin shrinker is 1-minimal on a
synthetic predicate — and the acceptance path: a deliberately injected
encoding bug (a dropped clause under ``--faults``) is caught by the
matrix, minimized to a tiny instance and written as a replayable
reproducer bundle.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.coloring import ColoringProblem, Graph, complete_graph
from repro.coloring.brute import is_colorable
from repro.core import Strategy
from repro.core.encodings import (CardinalityDirectScheme, MODERN_ENCODINGS,
                                  REGISTRY_ENCODINGS, amo_commander)
from repro.core.encodings import registry as encoding_registry
from repro.core.encodings.base import Level
from repro.core.pipeline import ColoringOutcome
from repro.qa import (FailureSignature, StrategyMatrix, generate_instances,
                      load_bundle, recheck_failure, run_differential,
                      run_fuzz, run_metamorphic, shrink_problem)
from repro.qa.differential import _cross_check, DifferentialResult
from repro.qa.metamorphic import (add_isolated_vertex, increment_colors,
                                  relabel_vertices, remove_random_edge)
from repro.qa.shrink import (induced_subproblem, minimal_members,
                             shrink_failure, without_edge)
from repro.reliability.faults import FaultPlan
from repro.sat import SolveStatus

#: A deliberately broken strategy set: ``drop_clause`` removes one
#: clause from every CNF the muldirect encoder emits, while ``direct``
#: stays sound — the differential matrix must catch the asymmetry.
INJECTED_BUG = "seed=7; drop_clause@encode:match=muldirect"
BUG_MATRIX = StrategyMatrix(encodings=("direct", "muldirect"),
                            symmetries=("none",), engines=("arena",))


def _instance_digest(instances):
    return [(i.name, i.kind, i.num_colors, i.expected,
             sorted(i.problem.graph.edges())) for i in instances]


class TestGenerators:
    def test_deterministic_per_seed(self):
        assert _instance_digest(generate_instances(5)) == \
            _instance_digest(generate_instances(5))

    def test_seeds_differ(self):
        assert _instance_digest(generate_instances(1)) != \
            _instance_digest(generate_instances(2))

    def test_all_families_present(self):
        kinds = {instance.kind for instance in generate_instances(1)}
        assert kinds == {"random", "near-critical", "clique-chord",
                         "disconnected", "edge-case", "routing"}

    def test_expected_labels_match_brute_force(self):
        for instance in generate_instances(3):
            if instance.expected is None:
                continue
            assert instance.expected == is_colorable(
                instance.problem.graph, instance.num_colors), \
                f"{instance.name}: generator mislabeled ground truth"

    def test_to_col_round_trips(self):
        from repro.coloring import parse_col_string
        instance = generate_instances(1)[0]
        parsed = parse_col_string(instance.to_col())
        assert sorted(parsed.edges()) == \
            sorted(instance.problem.graph.edges())

    def test_stable_across_hash_seeds(self):
        """The stream must not depend on PYTHONHASHSEED — a nightly CI
        failure has to replay locally from the seed alone."""
        script = ("from repro.qa import generate_instances\n"
                  "for i in generate_instances(4):\n"
                  "    print(i.name, i.num_colors, i.expected,"
                  " sorted(i.problem.graph.edges()))\n")
        outputs = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH="src")
            outputs.append(subprocess.run(
                [sys.executable, "-c", script], cwd=_repo_root(),
                env=env, capture_output=True, text=True, check=True).stdout)
        assert outputs[0] == outputs[1]


def _repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestStrategyMatrix:
    def test_full_default(self):
        matrix = StrategyMatrix.parse("full")
        assert matrix.size == len(matrix.encodings) * 2 * 2
        assert len(matrix.strategies()) == matrix.size

    def test_quick_preset_covers_inprocessing(self):
        # The quick (fuzz-smoke) matrix must differentially exercise
        # the inprocessing + tier-reduction flag set against the plain
        # arena engine.
        assert StrategyMatrix.parse("quick").engines == \
            ("arena", "arena+inprocess")

    def test_engines_preset_races_engines(self):
        assert StrategyMatrix.parse("engines").engines == \
            ("arena", "legacy", "packed", "arena+inprocess")

    def test_full_default_covers_whole_registry(self):
        assert set(StrategyMatrix().encodings) == set(REGISTRY_ENCODINGS)

    def test_quick_preset_covers_new_families(self):
        # The fuzz-smoke run must exercise the auxiliary-variable and
        # threshold-ladder code paths, not just the paper's schemes.
        encodings = StrategyMatrix.parse("quick").encodings
        assert {"cmddirect", "pop", "pop-h"} <= set(encodings)

    def test_modern_and_registry_tokens(self):
        modern = StrategyMatrix.parse(
            "encodings=modern;symmetry=none;engine=arena")
        assert modern.encodings == tuple(MODERN_ENCODINGS)
        full = StrategyMatrix.parse(
            "encodings=registry;symmetry=none;engine=arena")
        assert full.encodings == tuple(REGISTRY_ENCODINGS)

    def test_custom_spec(self):
        matrix = StrategyMatrix.parse(
            "encodings=direct,log;symmetry=none;engine=legacy")
        assert matrix.encodings == ("direct", "log")
        assert matrix.size == 2

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError):
            StrategyMatrix.parse("solver=cdcl")

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            StrategyMatrix.parse("encodings=nosuch")


class TestDifferential:
    def test_clean_on_trunk(self):
        problem = ColoringProblem(complete_graph(4), 4)
        result = run_differential(problem, BUG_MATRIX.strategies())
        assert result.ok, result.summary()
        assert result.consensus is SolveStatus.SAT
        assert result.oracle is True
        assert all(report.failed is False
                   for report in result.audits.values())

    def test_duplicate_labels_rejected(self):
        strategy = Strategy("direct", "none")
        with pytest.raises(ValueError):
            run_differential(ColoringProblem(Graph(2), 1),
                             [strategy, strategy])

    def test_wrong_oracle_reported(self):
        """Feeding a deliberately wrong ground truth must raise an
        oracle-mismatch from every decided strategy."""
        problem = ColoringProblem(complete_graph(3), 3)  # SAT
        result = run_differential(problem, BUG_MATRIX.strategies(),
                                  oracle=False)
        kinds = {failure.kind for failure in result.failures}
        assert kinds == {"oracle-mismatch"}

    def test_status_disagreement_signature(self):
        """_cross_check turns a SAT/UNSAT split into one signature
        naming every member on each side."""
        problem = ColoringProblem(complete_graph(3), 3)

        def outcome(label, status):
            return ColoringOutcome(
                strategy=Strategy("direct", "none"), status=status,
                coloring=None, encode_time=0.0, solve_time=0.0,
                num_vars=1, num_clauses=1)

        result = DifferentialResult(problem=problem, strategies=[])
        result.outcomes = {"a": outcome("a", SolveStatus.SAT),
                           "b": outcome("b", SolveStatus.UNSAT),
                           "c": outcome("c", SolveStatus.TIMEOUT)}
        failures = _cross_check(result)
        assert [f.kind for f in failures] == ["status-disagreement"]
        assert set(failures[0].members) == {("a", "SAT"), ("b", "UNSAT")}


class TestMetamorphicTransforms:
    def test_relabel_is_isomorphism(self):
        problem = ColoringProblem(Graph(3, [(0, 1), (1, 2)]), 2)
        relabeled = relabel_vertices(problem, [2, 0, 1])
        assert sorted(relabeled.graph.edges()) == [(0, 1), (0, 2)]

    def test_relabel_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            relabel_vertices(ColoringProblem(Graph(2), 1), [0, 0])

    def test_isolated_vertex_appended(self):
        problem = ColoringProblem(complete_graph(3), 3)
        grown = add_isolated_vertex(problem)
        assert grown.num_vertices == 4
        assert grown.graph.num_edges == 3

    def test_remove_edge_none_on_edgeless(self):
        import random
        assert remove_random_edge(ColoringProblem(Graph(3), 1),
                                  random.Random(0)) is None

    def test_increment_colors(self):
        assert increment_colors(
            ColoringProblem(Graph(1), 2)).num_colors == 3


class TestMetamorphicOracles:
    @pytest.mark.parametrize("num_colors", [2, 3])
    def test_clean_on_trunk(self, num_colors):
        problem = ColoringProblem(complete_graph(3), num_colors)
        report = run_metamorphic(problem, Strategy("direct", "none"),
                                 seed=1)
        assert report.ok
        assert "vertex-relabel" in report.checked
        assert "isolated-vertex" in report.checked

    def test_sat_only_oracles_skipped_on_unsat(self):
        problem = ColoringProblem(complete_graph(4), 2)
        report = run_metamorphic(problem, Strategy("direct", "none"),
                                 seed=1)
        assert report.ok
        assert report.base_status is SolveStatus.UNSAT
        assert "edge-removal" not in report.checked
        assert "color-increment" not in report.checked


class TestShrinker:
    def test_induced_subproblem_renumbers(self):
        problem = ColoringProblem(Graph(4, [(0, 2), (2, 3)]), 2)
        reduced = induced_subproblem(problem, [0, 2, 3])
        assert reduced.num_vertices == 3
        assert sorted(reduced.graph.edges()) == [(0, 1), (1, 2)]

    def test_without_edge(self):
        problem = ColoringProblem(complete_graph(3), 2)
        assert without_edge(problem, (0, 1)).graph.num_edges == 2

    def test_minimal_members_picks_one_per_side(self):
        signature = FailureSignature(
            kind="status-disagreement",
            members=(("a", "SAT"), ("b", "SAT"), ("c", "UNSAT")))
        narrowed = minimal_members(signature)
        assert len(narrowed) == 2
        assert {answer for _, answer in narrowed} == {"SAT", "UNSAT"}

    def test_ddmin_finds_embedded_triangle(self):
        """Synthetic predicate ("contains a triangle"): the shrinker
        must land exactly on K3, 1-minimal."""
        graph = Graph(9, [(0, 1), (1, 2), (3, 4), (4, 5), (3, 5),
                          (6, 7), (7, 8), (2, 6)])

        def has_triangle(problem):
            g = problem.graph
            vertices = range(g.num_vertices)
            return any(g.has_edge(u, v) and g.has_edge(v, w)
                       and g.has_edge(u, w)
                       for u in vertices for v in vertices
                       for w in vertices if u < v < w)

        result = shrink_problem(ColoringProblem(graph, 2), has_triangle)
        assert result.num_vertices == 3
        assert result.problem.graph.num_edges == 3
        assert result.probes > 0 and result.reductions > 0


class TestInjectedEncodingBug:
    """Acceptance: the harness catches a deliberately broken encoding.

    ``drop_clause`` deletes one clause from every muldirect CNF; the
    resulting model fails to decode (or decodes an improper coloring),
    which the matrix flags against the sound ``direct`` strategy,
    shrinks to a tiny instance and bundles for replay.
    """

    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("bundles"))
        plan = FaultPlan.parse(INJECTED_BUG)
        report = run_fuzz([1], matrix=BUG_MATRIX, faults=plan,
                          out_dir=out, metamorphic=False,
                          include_routing=False)
        return report, out

    def test_bug_is_caught(self, campaign):
        report, _ = campaign
        assert not report.ok
        for finding in report.findings:
            assert any("muldirect" in label
                       for label in finding.signature.labels)

    def test_shrunk_to_at_most_eight_vertices(self, campaign):
        report, _ = campaign
        shrunk = [f for f in report.findings if f.shrunk is not None]
        assert shrunk, "no finding was shrunk"
        for finding in shrunk:
            assert finding.shrunk.num_vertices <= 8, finding.describe()

    def test_bundle_replays(self, campaign):
        report, _ = campaign
        finding = next(f for f in report.findings if f.bundle_path)
        assert os.path.isfile(
            os.path.join(finding.bundle_path, "instance.col"))
        problem, meta = load_bundle(finding.bundle_path)
        assert meta["signature"]["kind"] == finding.signature.kind
        assert meta["faults"] != ""
        # The minimized instance still reproduces the exact signature
        # when re-solved under the recorded fault plan.
        assert recheck_failure(problem, BUG_MATRIX.strategies(),
                               finding.signature,
                               faults=FaultPlan.parse(meta["faults"]))

    def test_bundle_bytes_are_stable(self, campaign):
        report, out = campaign
        finding = next(f for f in report.findings if f.bundle_path)
        with open(os.path.join(finding.bundle_path, "meta.json"),
                  encoding="utf-8") as handle:
            before = handle.read()
        json.loads(before)  # well-formed
        # Re-writing the same campaign produces identical bytes.
        plan = FaultPlan.parse(INJECTED_BUG)
        run_fuzz([1], matrix=BUG_MATRIX, faults=plan, out_dir=out,
                 metamorphic=False, include_routing=False)
        with open(os.path.join(finding.bundle_path, "meta.json"),
                  encoding="utf-8") as handle:
            assert handle.read() == before

    def test_clean_without_the_fault(self):
        report = run_fuzz([1], matrix=BUG_MATRIX, metamorphic=False,
                          include_routing=False)
        assert report.ok, report.summary()


def _overlapping_groups(lits, group_size):
    """A wrong commander partition: consecutive groups share a literal."""
    return [list(lits[i:i + group_size + 1])
            for i in range(0, len(lits), group_size)]


class _BrokenCommanderScheme(CardinalityDirectScheme):
    """cmddirect with overlapping groups: a boundary literal sits in two
    groups, so selecting it forces *both* commanders true and trips the
    commander-level at-most-one — boundary colors become unusable and
    colorable instances go UNSAT.  The CNF is still well-formed (it
    passes ``VertexEncoding.validate``), so only differential solving
    can catch it."""

    def amo_clauses(self, values, alloc):
        return amo_commander(values, alloc, self.group_size or 2,
                             groups_fn=_overlapping_groups)


class TestBrokenCommanderGrouping:
    """Satellite acceptance: a deliberately broken commander grouping is
    caught by the strategy matrix and shrunk to a minimal instance."""

    BROKEN = "broken-cmddirect"

    @pytest.fixture()
    def broken_registry(self):
        scheme = _BrokenCommanderScheme(self.BROKEN, "commander",
                                        group_size=2)
        encoding_registry._CACHE[self.BROKEN] = encoding_registry.Encoding(
            self.BROKEN, [Level(scheme, None)])
        yield
        encoding_registry._CACHE.pop(self.BROKEN, None)

    @pytest.fixture()
    def matrix(self, broken_registry):
        return StrategyMatrix(encodings=("direct", self.BROKEN),
                              symmetries=("none",), engines=("arena",))

    def test_overconstrained_color_goes_unsat(self, broken_registry):
        """The bug mechanism itself: a triangle is 3-colorable, but the
        overlapping grouping makes the boundary color unusable."""
        from repro.core.pipeline import solve_coloring
        outcome = solve_coloring(ColoringProblem(complete_graph(3), 3),
                                 Strategy(self.BROKEN, "none"))
        assert outcome.status is SolveStatus.UNSAT

    def test_caught_by_differential_matrix(self, matrix):
        problem = ColoringProblem(complete_graph(3), 3)
        result = run_differential(problem, matrix.strategies())
        assert not result.ok
        kinds = {failure.kind for failure in result.failures}
        assert "status-disagreement" in kinds
        assert "oracle-mismatch" in kinds
        for failure in result.failures:
            assert any(self.BROKEN in label for label in failure.labels)

    def test_shrunk_to_a_triangle(self, matrix):
        """From a 7-vertex instance the shrinker must reduce the
        disagreement to its 3-vertex core and keep it reproducible."""
        graph = Graph(7, [(0, 1), (1, 2), (0, 2),  # the essential K3
                          (2, 3), (3, 4), (4, 5), (5, 6)])
        problem = ColoringProblem(graph, 3)
        strategies = matrix.strategies()
        result = run_differential(problem, strategies)
        assert not result.ok
        signature = next(f for f in result.failures
                         if f.kind == "status-disagreement")
        shrunk, narrowed = shrink_failure(problem, strategies, signature)
        assert shrunk.num_vertices == 3
        assert recheck_failure(shrunk.problem, strategies, narrowed)

    def test_sound_commander_stays_clean(self):
        """Control: the real cmddirect passes the same differential."""
        matrix = StrategyMatrix(encodings=("direct", "cmddirect"),
                                symmetries=("none",), engines=("arena",))
        problem = ColoringProblem(complete_graph(3), 3)
        result = run_differential(problem, matrix.strategies())
        assert result.ok, result.summary()


class TestShrinkFailure:
    def test_narrows_to_involved_pair(self):
        plan = FaultPlan.parse(INJECTED_BUG)
        strategies = BUG_MATRIX.strategies()
        # Not every instance trips the dropped clause (it may stay UNSAT
        # without it); take the first one that does.
        for instance in generate_instances(1):
            diff = run_differential(instance.problem, strategies,
                                    faults=plan)
            if not diff.ok:
                break
        else:
            pytest.fail("injected bug never fired across seed 1")
        signature = diff.failures[0]
        shrunk, narrowed = shrink_failure(instance.problem, strategies,
                                          signature, faults=plan)
        assert shrunk.num_vertices <= instance.num_vertices
        assert set(narrowed.labels) <= set(signature.labels)
        assert recheck_failure(shrunk.problem, strategies, narrowed,
                               faults=plan)


class TestFuzzCampaign:
    def test_budget_stops_early(self):
        report = run_fuzz(range(1, 100), matrix=BUG_MATRIX,
                          budget_seconds=0.0, include_routing=False)
        assert report.budget_exhausted
        assert report.seeds_completed < report.seeds_requested

    def test_clean_campaign_counts(self):
        report = run_fuzz([2], matrix=BUG_MATRIX, include_routing=False)
        assert report.ok
        assert report.instances > 0
        assert report.solves >= report.instances * BUG_MATRIX.size
        assert report.metamorphic_checks > 0
        assert "CLEAN" in report.summary()


class TestCli:
    @pytest.fixture(autouse=True)
    def _isolate_fault_env(self):
        """``--faults`` exports REPRO_FAULTS for worker processes; keep
        it from leaking between in-process CLI invocations (and into
        whatever test file runs after this one)."""
        os.environ.pop("REPRO_FAULTS", None)
        yield
        os.environ.pop("REPRO_FAULTS", None)

    def test_fuzz_clean_exits_zero(self, capsys):
        code = cli_main(["fuzz", "--seeds", "1", "--matrix", "engines",
                         "--no-routing"])
        assert code == 0
        assert "fuzz CLEAN" in capsys.readouterr().out

    def test_fuzz_finding_exits_ten(self, tmp_path, capsys):
        code = cli_main(["fuzz", "--seeds", "1",
                         "--matrix", "encodings=direct,muldirect;"
                                     "symmetry=none;engine=arena",
                         "--no-routing", "--no-metamorphic",
                         "--faults", INJECTED_BUG,
                         "--out", str(tmp_path / "bundles")])
        assert code == 10
        out = capsys.readouterr().out
        assert "FAILURES" in out
        assert (tmp_path / "bundles").is_dir()

    def test_bad_matrix_exits_two(self, capsys):
        assert cli_main(["fuzz", "--matrix", "nope=1"]) == 2

    def test_fuzz_emits_qa_trace_spans(self, tmp_path):
        from repro.obs.report import parse_trace_file
        trace_file = str(tmp_path / "fuzz.trace.jsonl")
        code = cli_main(["fuzz", "--seeds", "1", "--matrix", "engines",
                         "--no-routing", "--trace", trace_file])
        assert code == 0
        names = {record.get("name")
                 for record in parse_trace_file(trace_file)
                 if record.get("type") == "span"}
        assert {"qa.fuzz", "qa.instance", "qa.differential",
                "qa.metamorphic"} <= names
