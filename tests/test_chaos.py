"""Chaos tests: injected faults must degrade gracefully, never lie.

Every fault kind from :mod:`repro.reliability.faults`, fired into the
pipeline, the portfolio and the batch runner, must terminate within the
configured deadlines with a structured :class:`SolveStatus` — no hangs,
no unhandled exceptions — and the audit layer must flag every seeded
``wrong_model`` / ``truncated_proof`` fault while passing all unfaulted
answers.
"""

import os
import time

import pytest

from repro.bench import BatchJob, run_batch
from repro.bench import batch as batch_module
from repro.coloring import ColoringProblem, complete_graph, cycle_graph
from repro.core import Strategy, run_portfolio, solve_coloring
from repro.core import portfolio as portfolio_module
from repro.errors import ParseError
from repro.reliability import (CRASH_EXIT_CODE, AuditVerdict, FaultInjector,
                               FaultPlan, FaultSpec, InjectedFault,
                               QuarantinePolicy, QuarantineTracker,
                               audit_outcome, audit_solve)
from repro.sat import CNF, SolveStatus, solve
from repro.sat.solver.config import SolverConfig

#: Quick SAT instance: 5-cycle, 3 colors.
SAT_PROBLEM = ColoringProblem(cycle_graph(5), 3)
#: Quick UNSAT instance that still requires search (non-trivial proof).
UNSAT_PROBLEM = ColoringProblem(complete_graph(5), 4)
#: The "direct" encoding has exactly-one clauses per vertex, so a model
#: with a flipped variable always falsifies the re-encoded CNF — the
#: audit guarantee for ``wrong_model`` holds for it unconditionally.
DIRECT = Strategy("direct", "none")

#: Chaos deadline used by the termination tests; 2× this is the bound.
DEADLINE = 2.0

#: Base chaos seed — `make chaos` pins it; vary it to explore other
#: deterministic fault trajectories (every assertion is seed-robust).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1"))

FAST_QUARANTINE = QuarantinePolicy(base_backoff=0.05, max_backoff=0.2)


def _plan(text):
    return FaultPlan.parse(text)


class TestFaultPlanAPI:
    def test_parse_round_trip(self):
        plan = _plan("seed=7; crash@worker; wrong_model:p=0.5,max=2")
        assert plan.seed == 7
        assert [s.kind for s in plan.specs] == ["crash", "wrong_model"]
        assert FaultPlan.parse(plan.to_text()) == plan

    def test_parse_rejects_garbage(self):
        for text in ("seed=x", "frobnicate", "crash@nowhere",
                     "crash:p=high", "crash:whatever=1", "crash:p"):
            with pytest.raises(ParseError):
                FaultPlan.parse(text)

    def test_resolve_semantics(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=3; crash")
        env_plan = FaultPlan.resolve(None)
        assert env_plan is not None and env_plan.seed == 3
        assert FaultPlan.resolve(False) is None
        explicit = _plan("seed=9; hang")
        # An explicit plan is used as-is: the environment never merges in.
        assert FaultPlan.resolve(explicit) == explicit
        assert FaultPlan.resolve(FaultPlan()) is None

    def test_narrow_resolves_match_patterns(self):
        plan = _plan("crash:match=direct*; hang:match=other*")
        narrowed = plan.narrow("direct/s1")
        assert [s.kind for s in narrowed.specs] == ["crash"]
        assert narrowed.specs[0].match == "*"

    def test_injector_is_deterministic_across_instances(self):
        plan = _plan("seed=5; wrong_model:p=0.5")
        picks = [FaultInjector(plan, label="run").wrong_model_var(1000)
                 for _ in range(3)]
        assert picks[0] == picks[1] == picks[2]
        other = FaultInjector(plan.with_seed(6),
                              label="run").wrong_model_var(1000)
        # Not a guarantee for every pair of seeds, but these differ.
        assert other != picks[0]

    def test_max_fires_caps_firing(self):
        injector = FaultInjector(_plan("slowdown:max=2,s=0.5"))
        delays = [injector.slowdown_delay() for _ in range(5)]
        assert delays == [0.5, 0.5, 0.0, 0.0, 0.0]

    def test_site_filter(self):
        injector = FaultInjector(_plan("crash@worker"), sites=("solver",))
        injector.maybe_crash()  # worker-site spec must not fire here
        with pytest.raises(InjectedFault):
            FaultInjector(_plan("crash@worker"),
                          sites=("worker",)).maybe_crash()


class TestPipelineFaults:
    """Single-process injection through solve_coloring."""

    def test_crash_degrades_to_error(self):
        outcome = solve_coloring(SAT_PROBLEM, DIRECT,
                                 faults=_plan(f"seed={CHAOS_SEED}; crash@solver"))
        assert outcome.status is SolveStatus.ERROR
        assert "InjectedFault" in outcome.solver_stats["stop_reason"]

    def test_hang_respects_explicit_seconds(self):
        start = time.perf_counter()
        outcome = solve_coloring(SAT_PROBLEM, DIRECT,
                                 faults=_plan(f"seed={CHAOS_SEED}; hang:s=0.2"))
        elapsed = time.perf_counter() - start
        assert outcome.status is SolveStatus.SAT
        assert 0.2 <= elapsed < 5.0

    def test_slowdown_still_terminates(self):
        outcome = solve_coloring(UNSAT_PROBLEM, DIRECT,
                                 faults=_plan(f"seed={CHAOS_SEED}; slowdown:s=0.001"))
        assert outcome.status is SolveStatus.UNSAT

    def test_corrupt_input_is_recorded(self):
        outcome = solve_coloring(SAT_PROBLEM, DIRECT,
                                 faults=_plan(f"seed={CHAOS_SEED}; corrupt_input"))
        assert isinstance(outcome.status, SolveStatus)
        assert "corrupt_input@encode" in str(
            outcome.solver_stats.get("injected_faults", ""))

    def test_env_plan_activates_and_false_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=2; crash@solver")
        faulted = solve_coloring(SAT_PROBLEM, DIRECT)
        assert faulted.status is SolveStatus.ERROR
        clean = solve_coloring(SAT_PROBLEM, DIRECT, faults=False)
        assert clean.status is SolveStatus.SAT


class TestAuditDetection:
    """The headline guarantee: seeded wrong_model / truncated_proof
    faults are flagged 100% of the time; unfaulted answers pass."""

    @pytest.mark.parametrize("seed",
                             range(CHAOS_SEED, CHAOS_SEED + 12))
    def test_wrong_model_always_detected(self, seed):
        outcome = solve_coloring(SAT_PROBLEM, DIRECT, keep_model=True,
                                 faults=_plan(f"seed={seed}; wrong_model"))
        if outcome.status is SolveStatus.ERROR:
            # The pipeline's own decode check caught the bad model.
            assert "stop_reason" in outcome.solver_stats
            return
        report = audit_outcome(SAT_PROBLEM, outcome)
        assert report.failed, report.summary()

    @pytest.mark.parametrize("seed",
                             range(CHAOS_SEED, CHAOS_SEED + 8))
    def test_truncated_proof_always_detected(self, seed):
        outcome = solve_coloring(
            UNSAT_PROBLEM, DIRECT, proof_log=True,
            faults=_plan(f"seed={seed}; truncated_proof"))
        assert outcome.status is SolveStatus.UNSAT
        report = audit_outcome(UNSAT_PROBLEM, outcome)
        assert report.failed
        assert any(check.name == "proof-replay"
                   for check in report.failures)

    def test_unfaulted_sat_passes_audit(self):
        outcome = solve_coloring(SAT_PROBLEM, DIRECT, keep_model=True,
                                 faults=False)
        report = audit_outcome(SAT_PROBLEM, outcome)
        assert report.verdict is AuditVerdict.PASS, report.summary()

    def test_unfaulted_unsat_proof_passes_audit(self):
        outcome = solve_coloring(UNSAT_PROBLEM, DIRECT, proof_log=True,
                                 faults=False)
        report = audit_outcome(UNSAT_PROBLEM, outcome)
        assert report.verdict is AuditVerdict.PASS, report.summary()

    def test_unfaulted_unsat_cross_check_passes_audit(self):
        outcome = solve_coloring(UNSAT_PROBLEM, DIRECT, faults=False)
        report = audit_outcome(UNSAT_PROBLEM, outcome)
        assert report.verdict is AuditVerdict.PASS
        assert any(check.name == "cross-engine-unsat"
                   for check in report.checks)

    def test_undecided_outcome_is_skipped_not_passed(self):
        from repro.sat import SolveLimits
        problem = ColoringProblem(complete_graph(11), 10)
        outcome = solve_coloring(problem, Strategy("muldirect", "none"),
                                 faults=False,
                                 limits=SolveLimits(conflict_budget=5))
        assert not outcome.status.decided
        report = audit_outcome(problem, outcome)
        assert report.verdict is AuditVerdict.SKIPPED

    def test_audit_solve_flags_bad_raw_model(self):
        from repro.sat import Model
        from repro.sat.model import SolveResult
        cnf = CNF([(1,), (-1, 2)])
        result = solve(cnf, SolverConfig())
        assert result.status is SolveStatus.SAT
        assert audit_solve(cnf, result).verdict is AuditVerdict.PASS
        values = [result.model.value(v) for v in (1, 2)]
        values[0] = not values[0]  # flip var 1: falsifies the unit clause
        bad = SolveResult(SolveStatus.SAT, Model(values),
                          dict(result.stats))
        assert audit_solve(cnf, bad).failed


class TestInprocessFaultAudit:
    """The two inprocessing fault kinds — ``drop_resolvent`` (a BVE
    resolvent silently lost) and ``skip_occurrence`` (a stale
    occurrence entry deleting a live clause) — weaken the formula, so
    an UNSAT instance can come back SAT.  The audit layer must catch
    every such flip; the faults must never produce a *passing* wrong
    answer."""

    #: UNSAT core (all four sign combinations over x1/x2) plus a
    #: signature-collision clause: literal codes for x1 (2) and x33
    #: (66) share bit 2 of the 64-bit subsumption signature, so the
    #: stale-occurrence scan considers (1,33) vs (1,2) a "match".
    COLLISION_CNF = CNF([(1, 33), (1, 2), (1, -2), (-1, 2), (-1, -2),
                         (33, 5), (33, 6)])
    #: Same UNSAT core alone: BVE on x1 must derive resolvents (2) and
    #: (-2); dropping them leaves an empty — trivially SAT — formula.
    BVE_CNF = CNF([(1, 2), (1, -2), (-1, 2), (-1, -2)])

    @staticmethod
    def _config(**overrides):
        from repro.sat.solver.config import minisat_like
        return minisat_like(inprocessing=True, **overrides)

    def test_drop_resolvent_flip_is_detected(self):
        # Subsumption and vivification off: BVE is the only technique,
        # so the dropped resolvents are what flips the answer.
        result = solve(self.BVE_CNF, self._config(
            inprocess_subsume=False, inprocess_vivify=False,
            fault_plan=_plan(f"seed={CHAOS_SEED}; drop_resolvent")))
        assert result.status is SolveStatus.SAT  # the lie
        assert audit_solve(self.BVE_CNF, result).failed

    def test_skip_occurrence_flip_is_detected(self):
        result = solve(self.COLLISION_CNF, self._config(
            fault_plan=_plan(f"seed={CHAOS_SEED}; skip_occurrence")))
        assert result.status is SolveStatus.SAT  # the lie
        assert audit_solve(self.COLLISION_CNF, result).failed

    def test_unfaulted_inprocessing_passes_audit(self):
        for cnf in (self.COLLISION_CNF, self.BVE_CNF):
            result = solve(cnf, self._config())
            assert result.status is SolveStatus.UNSAT
            assert audit_solve(cnf, result).verdict is AuditVerdict.PASS

    @pytest.mark.parametrize("kind", ["drop_resolvent", "skip_occurrence"])
    @pytest.mark.parametrize("seed", range(CHAOS_SEED, CHAOS_SEED + 4))
    def test_pipeline_never_passes_a_wrong_answer(self, kind, seed):
        # End to end through the coloring pipeline on the inprocessing
        # engine: whatever trajectory the fault produces, the result is
        # either still correct, rejected by the pipeline's own decode
        # check (ERROR), or flagged by the audit — never a wrong answer
        # with a clean bill of health.
        strategy = Strategy("direct", "none", engine="arena+inprocess")
        outcome = solve_coloring(UNSAT_PROBLEM, strategy, proof_log=True,
                                 keep_model=True,
                                 faults=_plan(f"seed={seed}; {kind}"))
        if outcome.status is SolveStatus.ERROR:
            assert "stop_reason" in outcome.solver_stats
            return
        report = audit_outcome(UNSAT_PROBLEM, outcome)
        if outcome.status is SolveStatus.SAT:  # flipped: must be caught
            assert report.failed, report.summary()
        else:
            assert outcome.status is SolveStatus.UNSAT


class TestPortfolioChaos:
    """Every fault kind, fired into a real multiprocessing race, must
    end within 2× the deadline with a structured status."""

    @pytest.fixture(autouse=True)
    def _short_grace(self, monkeypatch):
        monkeypatch.setattr(portfolio_module, "_CANCEL_GRACE_SECONDS", 0.5)
        monkeypatch.setattr(batch_module, "_CANCEL_GRACE_SECONDS", 0.5)

    @pytest.mark.parametrize("spec,expected", [
        ("crash@worker", SolveStatus.ERROR),
        ("crash@solver", SolveStatus.ERROR),
        ("hang@worker", SolveStatus.TIMEOUT),
        ("slowdown:s=0.002", SolveStatus.SAT),
        ("wrong_model", SolveStatus.ERROR),
        ("corrupt_input", None),  # may change the answer; must not hang
    ])
    def test_fault_kinds_terminate_in_deadline(self, spec, expected):
        start = time.perf_counter()
        result = run_portfolio(SAT_PROBLEM, [DIRECT], timeout=DEADLINE,
                               faults=_plan(f"seed={CHAOS_SEED}; {spec}"), audit=True)
        elapsed = time.perf_counter() - start
        assert elapsed < 2 * DEADLINE, f"{spec} overran: {elapsed:.1f}s"
        assert isinstance(result.status, SolveStatus)
        if expected is not None:
            assert result.status is expected, (spec, result.member_status,
                                               result.failures)

    def test_truncated_proof_cannot_win(self):
        result = run_portfolio(UNSAT_PROBLEM, [DIRECT], timeout=DEADLINE,
                               faults=_plan(f"seed={CHAOS_SEED}; truncated_proof"),
                               audit=True)
        assert result.status is SolveStatus.ERROR
        assert "audit failed" in result.failures[DIRECT.label]
        assert result.audits[DIRECT.label].failed

    def test_worker_crash_is_reported_with_exit_code(self):
        result = run_portfolio(SAT_PROBLEM, [DIRECT], timeout=DEADLINE,
                               faults=_plan(f"seed={CHAOS_SEED}; crash@worker"))
        assert result.status is SolveStatus.ERROR
        assert f"exit code {CRASH_EXIT_CODE}" \
            in result.failures[DIRECT.label]

    def test_loser_ignoring_cancellation_is_hard_terminated(self):
        """A hung loser must not delay the winner's answer past the
        cancellation grace period (the CancelToken backstop)."""
        healthy = Strategy("muldirect", "s1", seed=1)
        start = time.perf_counter()
        result = run_portfolio(
            SAT_PROBLEM, [DIRECT, healthy], timeout=10.0,
            faults=_plan(f"seed={CHAOS_SEED}; hang@worker:match=direct"))
        elapsed = time.perf_counter() - start
        assert result.status is SolveStatus.SAT
        assert result.winner.label == healthy.label
        # winner answers in well under a second; the hung member costs at
        # most the grace period before being terminated.
        assert elapsed < 5.0

    def test_wrong_model_winner_demoted_race_continues(self):
        healthy = Strategy("muldirect", "s1", seed=1)
        result = run_portfolio(
            SAT_PROBLEM, [DIRECT, healthy], timeout=10.0, audit=True,
            faults=_plan(f"seed={CHAOS_SEED + 5}; wrong_model:match=direct"))
        assert result.status is SolveStatus.SAT
        assert result.winner.label == healthy.label


class TestBatchChaos:
    @pytest.fixture(autouse=True)
    def _short_grace(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_CANCEL_GRACE_SECONDS", 0.5)

    def _run(self, job, **kwargs):
        kwargs.setdefault("max_workers", 2)
        kwargs.setdefault("quarantine", FAST_QUARANTINE)
        return run_batch([job], **kwargs)

    @pytest.mark.parametrize("spec", [
        "crash@worker", "crash@solver", "hang@worker", "slowdown:s=0.002",
        "wrong_model", "truncated_proof", "corrupt_input",
    ])
    def test_fault_kinds_terminate_in_deadline(self, spec):
        problem = UNSAT_PROBLEM if spec == "truncated_proof" else SAT_PROBLEM
        job = BatchJob("chaos", problem, DIRECT)
        start = time.perf_counter()
        result = self._run(job, job_timeout=DEADLINE, timeout=2 * DEADLINE,
                           faults=_plan(f"seed={CHAOS_SEED}; {spec}"), audit=True,
                           max_attempts=1, engine_fallback=False)
        elapsed = time.perf_counter() - start
        assert elapsed < 2 * (2 * DEADLINE), f"{spec} overran: {elapsed:.1f}s"
        assert len(result.results) == 1
        assert isinstance(result.results[0].status, SolveStatus)

    def test_hang_past_job_deadline_is_hard_terminated(self):
        """Regression: a worker sleeping past its per-job deadline (and
        ignoring the cancel token) must be killed and reported TIMEOUT,
        not waited on."""
        job = BatchJob("hang", SAT_PROBLEM, DIRECT)
        start = time.perf_counter()
        result = self._run(job, job_timeout=0.3, max_attempts=1,
                           faults=_plan(f"seed={CHAOS_SEED}; hang@worker"))
        elapsed = time.perf_counter() - start
        record = result.results[0]
        assert record.status is SolveStatus.TIMEOUT
        assert elapsed < 3.0
        assert not result.pending

    def test_arena_fault_falls_back_to_legacy_engine(self):
        job = BatchJob("fallback", SAT_PROBLEM, DIRECT)
        result = self._run(job, faults=_plan(f"seed={CHAOS_SEED}; crash@arena"),
                           audit=True)
        record = result.results[0]
        assert record.status is SolveStatus.SAT
        assert record.attempts == 2
        assert record.engine == "legacy"
        assert record.audit is not None and record.audit.passed

    def test_audit_failure_is_retried_then_error(self):
        job = BatchJob("liar", SAT_PROBLEM, DIRECT)
        result = self._run(job, faults=_plan(f"seed={CHAOS_SEED + 5}; wrong_model"),
                           audit=True, max_attempts=2,
                           engine_fallback=False)
        record = result.results[0]
        assert record.status is SolveStatus.ERROR
        assert record.attempts == 2
        health = result.quarantine[DIRECT.label]
        assert health["offences"] >= 2

    def test_quarantine_backoff_delays_retry(self):
        job = BatchJob("backoff", SAT_PROBLEM, DIRECT)
        start = time.perf_counter()
        result = self._run(
            job, faults=_plan(f"seed={CHAOS_SEED}; crash@arena"),
            quarantine=QuarantinePolicy(threshold=1, base_backoff=0.3,
                                        max_backoff=1.0))
        elapsed = time.perf_counter() - start
        record = result.results[0]
        assert record.status is SolveStatus.SAT and record.attempts == 2
        assert elapsed >= 0.3  # the retry waited out the backoff

    def test_faults_false_disables_env_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=1; crash@worker")
        job = BatchJob("clean", SAT_PROBLEM, DIRECT)
        result = self._run(job, faults=False)
        assert result.results[0].status is SolveStatus.SAT
        assert result.results[0].attempts == 1


class TestQuarantineTracker:
    def test_backoff_grows_and_caps(self):
        policy = QuarantinePolicy(threshold=1, base_backoff=1.0,
                                  backoff_factor=2.0, max_backoff=5.0)
        tracker = QuarantineTracker(policy)
        backoffs = [tracker.record_offence("s", "boom", now=0.0)
                    for _ in range(5)]
        assert backoffs == [1.0, 2.0, 4.0, 5.0, 5.0]
        assert tracker.quarantined("s", 0.5)
        assert not tracker.quarantined("s", 100.0)

    def test_success_resets_offences(self):
        tracker = QuarantineTracker(QuarantinePolicy(threshold=1))
        tracker.record_offence("s", "boom", now=0.0)
        tracker.record_success("s")
        assert not tracker.quarantined("s", 0.0)
        assert tracker.health("s").offences == 0
        assert tracker.health("s").total_offences == 1

    def test_below_threshold_no_quarantine(self):
        tracker = QuarantineTracker(QuarantinePolicy(threshold=2))
        assert tracker.record_offence("s", "boom", now=0.0) == 0.0
        assert not tracker.quarantined("s", 0.0)


class TestClauseChannelChaos:
    """Faults at the ``clause_channel`` site: a corrupted or dropped
    shared clause must never change an answer — sharing is an
    optimisation, and the import filter is the soundness boundary."""

    def _hard_unsat(self):
        from repro.qa.generators import conflict_instances
        return next(iter(conflict_instances(
            7, 1, num_vertices=48, edge_probability=0.42,
            clique_size=8))).problem

    def test_corrupt_share_rejected_never_learned_in_process(self):
        """Deterministic single-solver path: corrupt payloads hit the
        filter and nothing malformed reaches the clause database."""
        from repro.core.encodings.registry import get_encoding
        from repro.core.symmetry.clauses import apply_symmetry
        from repro.dist.sharing import LoopbackChannel
        from repro.sat import CDCLSolver
        from repro.sat.solver.config import preset

        encoded = get_encoding("direct").encode(self._hard_unsat())
        apply_symmetry(encoded, "s1")
        config = preset("siege_like")
        config.restart_base = 2
        channel = LoopbackChannel(num_vars=encoded.cnf.num_vars)
        # Exactly what corrupt_share manufactures: a zeroed literal.
        channel.feed((9, -11), lbd=1)
        channel.feed_raw(("peer", (9, 0, -11), 1))
        config.clause_channel = channel
        solver = CDCLSolver(encoded.cnf, config)
        result = solver.solve()
        assert result.status is SolveStatus.UNSAT
        assert channel.rejected == 1
        # Only the well-formed clause was ever attached.
        assert solver.stats["shared_imported"] == 1

    def test_endpoint_corrupt_share_fault_produces_rejected_payload(self):
        """The injected fault mangles the wire payload; the receiving
        filter must throw it away."""
        from repro.dist.sharing import ClauseHub

        hub = ClauseHub(["a", "b"], num_vars=30)
        sender, receiver = hub.endpoint("a"), hub.endpoint("b")
        sender.bind_faults(_plan(f"seed={CHAOS_SEED}; corrupt_share"), "a")
        assert sender.export((3, -7, 12), 2)
        deadline = time.time() + 2.0
        while hub.pump() == 0 and time.time() < deadline:
            pass
        time.sleep(0.05)
        assert receiver.take() == []  # corrupted in transit -> rejected
        assert receiver._filter.rejected == 1
        hub.close()

    def test_cooperative_portfolio_survives_corrupt_share(self):
        from repro.dist import run_cooperative

        result = run_cooperative(
            self._hard_unsat(), Strategy("muldirect", "s1"), members=2,
            timeout=60,
            faults=_plan(f"seed={CHAOS_SEED}; corrupt_share"))
        assert result.status is SolveStatus.UNSAT

    def test_cooperative_portfolio_survives_drop_share(self):
        from repro.dist import run_cooperative

        result = run_cooperative(
            self._hard_unsat(), Strategy("muldirect", "s1"), members=2,
            timeout=60,
            faults=_plan(f"seed={CHAOS_SEED}; drop_share"))
        assert result.status is SolveStatus.UNSAT

    def test_cubed_run_survives_clause_channel_faults(self):
        from repro.dist import run_cubed

        result = run_cubed(
            self._hard_unsat(), Strategy("muldirect", "s1"),
            max_workers=2, timeout=120, share=True,
            faults=_plan(f"seed={CHAOS_SEED}; corrupt_share; drop_share"))
        assert result.status is SolveStatus.UNSAT
