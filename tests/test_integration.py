"""Full-stack integration tests: netlist → global route → .col → CNF →
CDCL → tracks, plus cross-layer consistency checks."""

import pytest

from repro import (Strategy, detailed_route, load_routing,
                   minimum_channel_width, solve_coloring)
from repro.coloring import parse_col_string
from repro.core.encodings import TABLE2_ENCODINGS
from repro.fpga import build_routing_csp, is_legal
from repro.sat import parse_dimacs_string


@pytest.fixture(scope="module")
def routing():
    return load_routing("9symml", scale=0.8)


@pytest.fixture(scope="module")
def width(routing):
    return minimum_channel_width(routing, Strategy("ITE-log", "s1"))


class TestToolFlowArtifacts:
    def test_col_artifact_feeds_second_stage(self, routing, width):
        """The two-stage flow: write .col, re-parse it, color it, and get
        the same satisfiability answer as the direct path."""
        from repro.coloring import ColoringProblem
        csp = build_routing_csp(routing, width)
        reparsed = parse_col_string(csp.to_dimacs_col())
        problem = ColoringProblem(reparsed, width)
        outcome = solve_coloring(problem, Strategy("muldirect", "b1"))
        assert outcome.is_sat

    def test_cnf_artifact_round_trips(self, routing, width):
        from repro.core import get_encoding
        from repro.sat import solve
        csp = build_routing_csp(routing, width - 1)
        encoded = get_encoding("ITE-log").encode(csp.problem)
        reparsed = parse_dimacs_string(encoded.cnf.to_dimacs())
        assert not solve(reparsed).is_sat


class TestCrossEncodingAgreement:
    @pytest.mark.parametrize("encoding", TABLE2_ENCODINGS)
    def test_all_encodings_agree_on_unroutability(self, routing, width,
                                                  encoding):
        result = detailed_route(routing, width - 1, Strategy(encoding, "s1"))
        assert not result.routable

    @pytest.mark.parametrize("encoding", TABLE2_ENCODINGS)
    def test_all_encodings_find_legal_routings(self, routing, width,
                                               encoding):
        result = detailed_route(routing, width, Strategy(encoding, "b1"))
        assert result.routable
        assert is_legal(result.assignment)


class TestSolverAgreement:
    def test_presets_agree_on_boundary(self, routing, width):
        for solver in ("minisat_like", "siege_like"):
            strategy = Strategy("ITE-linear-2+muldirect", "s1", solver=solver)
            assert detailed_route(routing, width, strategy).routable
            assert not detailed_route(routing, width - 1, strategy).routable


class TestPortfolioOnRouting:
    def test_portfolio_proves_unroutability(self, routing, width):
        from repro.core import PORTFOLIO_3, run_portfolio
        csp = build_routing_csp(routing, width - 1)
        result = run_portfolio(csp.problem, list(PORTFOLIO_3))
        assert not result.outcome.is_sat
