"""The solve service: admission control units and a live server e2e."""

import asyncio
import threading

import pytest

from repro.api import SolveRequest
from repro.coloring.problem import Graph
from repro.obs import metrics as obs_metrics
from repro.reliability.quarantine import QuarantinePolicy
from repro.sat.status import SolveLimits, SolveStatus
from repro.serve import (AdmissionController, AdmissionPolicy, ServeClient,
                         ServeRejected, SolveService)


def triangle():
    graph = Graph(3)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(0, 2)
    return graph


class TestAdmissionController:
    def test_admits_within_policy(self):
        controller = AdmissionController(AdmissionPolicy())
        decision = controller.admit("alice", num_vertices=10)
        assert decision.admitted and decision.reason == ""
        assert controller.admitted == 1 and controller.rejected == 0

    def test_queue_depth_backpressure(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_depth=2))
        for client in ("a", "b"):
            assert controller.admit(client, 3).admitted
            controller.begin(client)
        decision = controller.admit("c", 3)
        assert not decision.admitted and "queue depth" in decision.reason
        controller.finish("a", SolveStatus.SAT)
        assert controller.admit("c", 3).admitted
        assert controller.rejections == {"queue_full": 1}

    def test_per_client_cap(self):
        controller = AdmissionController(
            AdmissionPolicy(max_inflight_per_client=1))
        assert controller.admit("alice", 3).admitted
        controller.begin("alice")
        blocked = controller.admit("alice", 3)
        assert not blocked.admitted and "in flight" in blocked.reason
        # Other clients are unaffected by alice's cap.
        assert controller.admit("bob", 3).admitted

    def test_size_cap(self):
        controller = AdmissionController(AdmissionPolicy(max_vertices=5))
        assert controller.admit("alice", 5).admitted
        decision = controller.admit("alice", 6)
        assert not decision.admitted and "vertices" in decision.reason
        assert controller.rejections == {"too_large": 1}

    def test_budget_ceiling_merges_tighter_bound(self):
        controller = AdmissionController(AdmissionPolicy(
            job_limits=SolveLimits(conflict_budget=100)))
        # Client asks for more than the ceiling: clamped down.
        decision = controller.admit(
            "alice", 3, SolveLimits(conflict_budget=500))
        assert decision.limits.conflict_budget == 100
        # Client asks for less: its own tighter budget wins.
        decision = controller.admit(
            "alice", 3, SolveLimits(conflict_budget=7))
        assert decision.limits.conflict_budget == 7
        # No request budget at all: the ceiling applies.
        assert controller.admit("alice", 3).limits.conflict_budget == 100

    def test_erroring_client_gets_quarantined(self):
        controller = AdmissionController(AdmissionPolicy(
            quarantine=QuarantinePolicy(threshold=2, base_backoff=60.0)))
        for _ in range(2):
            assert controller.admit("alice", 3).admitted
            controller.begin("alice")
            controller.finish("alice", SolveStatus.ERROR, "worker crash")
        decision = controller.admit("alice", 3)
        assert not decision.admitted and "quarantined" in decision.reason
        # Budget exhaustion is the budget working, not an offence.
        controller2 = AdmissionController(AdmissionPolicy(
            quarantine=QuarantinePolicy(threshold=2)))
        for _ in range(3):
            assert controller2.admit("bob", 3).admitted
            controller2.begin("bob")
            controller2.finish("bob", SolveStatus.BUDGET_EXHAUSTED)
        assert controller2.admit("bob", 3).admitted

    def test_snapshot_shape(self):
        controller = AdmissionController(AdmissionPolicy(max_vertices=5))
        controller.admit("alice", 3)
        controller.begin("alice")
        controller.admit("alice", 99)
        snapshot = controller.snapshot()
        assert snapshot["admitted"] == 1 and snapshot["rejected"] == 1
        assert snapshot["rejections"] == {"too_large": 1}
        assert snapshot["inflight"] == 1
        assert snapshot["inflight_by_client"] == {"alice": 1}


def start_service(**kwargs):
    """Boot a SolveService on a daemon thread; returns it once bound."""
    # The service keeps the process-global metrics registry enabled and
    # never resets it (one service per process in production); tests
    # boot many services per process, so start each from zero.
    obs_metrics.registry().reset()
    service = SolveService(**kwargs)
    bound = threading.Event()
    failures = []

    async def _run():
        await service.start()
        bound.set()
        await service.serve_forever()

    def _thread():
        try:
            asyncio.run(_run())
        except Exception as error:  # surfaced via the fixture assert
            failures.append(error)
            bound.set()

    thread = threading.Thread(target=_thread, daemon=True,
                              name="test-solve-service")
    thread.start()
    assert bound.wait(timeout=30), "service did not come up"
    assert not failures, f"service failed to start: {failures}"
    return service, thread


class TestSolveServiceEndToEnd:
    @pytest.fixture(scope="class")
    def service(self):
        service, thread = start_service(
            port=0, workers=1,
            policy=AdmissionPolicy(max_vertices=50))
        yield service
        with ServeClient(port=service.port) as client:
            client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_full_request_cycle(self, service):
        with ServeClient(port=service.port) as client:
            pong = client.ping()
            assert pong["protocol"] == "repro-serve/1"

            sat = SolveRequest(graph=triangle(), colors=3, tag="t-sat")
            first = client.solve(sat)
            assert first.status is SolveStatus.SAT
            assert first.coloring is not None
            assert not first.cached
            assert first.audit == "PASS"  # audit_fills forces the audit
            assert first.tag == "t-sat"
            assert first.digest == sat.cache_key()

            # Identical content, different tag: served from the cache,
            # with this submission's tag stamped on.
            again = client.solve(SolveRequest(graph=triangle(), colors=3,
                                              tag="t-dup"))
            assert again.cached and again.tag == "t-dup"
            assert again.status is SolveStatus.SAT
            assert again.coloring == first.coloring

            unsat = client.solve(SolveRequest(graph=triangle(), colors=2))
            assert unsat.status is SolveStatus.UNSAT
            assert unsat.audit == "PASS" and not unsat.cached

            dump = client.metrics()
            assert dump["cache"]["fills"] == 2
            assert dump["cache"]["hits"] >= 1
            assert dump["admission"]["admitted"] == 2
            counters = dump["metrics"]["counters"]
            assert counters["serve.responses.cached"] >= 1
            assert counters["serve.jobs.SAT"] == 1
            assert counters["serve.jobs.UNSAT"] == 1

    def test_oversized_instance_is_rejected(self, service):
        big = Graph(51)  # policy caps at 50 vertices
        big.add_edge(0, 1)
        with ServeClient(port=service.port) as client:
            with pytest.raises(ServeRejected, match="vertices"):
                client.solve(SolveRequest(graph=big, colors=3))

    def test_malformed_payloads_answered_not_fatal(self, service):
        with ServeClient(port=service.port) as client:
            reply = client._call({"op": "nonsense"})
            assert not reply["ok"] and "unknown op" in reply["error"]
            reply = client._call({"op": "solve", "request": {"bogus": 1}})
            assert not reply["ok"] and "invalid request" in reply["error"]
            # The connection survives; the service still answers.
            assert client.ping()["protocol"] == "repro-serve/1"


class TestDrainingShutdown:
    def test_shutdown_op_acknowledges_then_drains_to_a_stop(self):
        service, thread = start_service(port=0, workers=1)
        with ServeClient(port=service.port) as client:
            assert client.ping()["draining"] is False
            reply = client._call({"op": "shutdown"})
            assert reply["ok"] and reply["draining"] is True
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_draining_rejects_new_work_but_serves_the_cache(self):
        service, thread = start_service(port=0, workers=1)
        try:
            with ServeClient(port=service.port) as client:
                # White-box: hold the server in its drain window (with
                # real in-flight jobs the window closes too fast to hit
                # deterministically from outside).
                service._draining = True
                with pytest.raises(ServeRejected, match="draining"):
                    client.solve(SolveRequest(graph=triangle(), colors=3))
                service._draining = False
                first = client.solve(SolveRequest(graph=triangle(),
                                                  colors=3))
                assert first.status is SolveStatus.SAT
                # A cached answer needs no worker: served even while
                # draining (the cache check precedes the drain gate).
                service._draining = True
                again = client.solve(SolveRequest(graph=triangle(),
                                                  colors=3))
                assert again.cached and again.status is SolveStatus.SAT
                service._draining = False
        finally:
            with ServeClient(port=service.port) as client:
                client.shutdown()
            thread.join(timeout=30)
            assert not thread.is_alive()
