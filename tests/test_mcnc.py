"""Tests for the MCNC-like benchmark profiles."""

import pytest

from repro.fpga import (ALL_BENCHMARKS, EXTRA_BENCHMARKS, TABLE2_BENCHMARKS,
                        benchmark_names, benchmark_spec, load_netlist,
                        load_routing, validate_global_routing)


class TestInventory:
    def test_table2_circuits(self):
        assert TABLE2_BENCHMARKS == ["alu2", "too_large", "alu4", "C880",
                                     "apex7", "C1355", "vda", "k2"]

    def test_names_cover_both_suites(self):
        names = benchmark_names()
        assert names[:8] == TABLE2_BENCHMARKS
        assert set(EXTRA_BENCHMARKS) <= set(names)
        assert len(names) == len(set(names))

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            benchmark_spec("unknown_circuit")


class TestSpecs:
    def test_every_benchmark_has_a_spec(self):
        for name in ALL_BENCHMARKS:
            spec = benchmark_spec(name)
            assert spec.name == name
            assert spec.num_nets > 0

    def test_difficulty_ramps_with_position(self):
        # Later Table-2 circuits are at least as large.
        sizes = [benchmark_spec(n).cols * benchmark_spec(n).rows
                 for n in TABLE2_BENCHMARKS]
        assert sizes[0] == min(sizes)
        assert sizes[-1] == max(sizes)

    def test_scaling(self):
        full = benchmark_spec("k2")
        half = benchmark_spec("k2", scale=0.5)
        assert half.cols == round(full.cols * 0.5)
        assert half.num_nets == round(full.num_nets * 0.5)
        assert half.seed == full.seed

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            benchmark_spec("alu2", scale=0)


class TestLoading:
    def test_netlist_deterministic(self):
        a = load_netlist("alu2")
        b = load_netlist("alu2")
        assert [(n.source, n.sinks) for n in a.nets] \
            == [(n.source, n.sinks) for n in b.nets]

    def test_scaled_netlist_is_smaller(self):
        full = load_netlist("alu2")
        half = load_netlist("alu2", scale=0.5)
        assert half.num_nets < full.num_nets

    @pytest.mark.parametrize("name", ["alu2", "9symml"])
    def test_routing_is_valid(self, name):
        routing = load_routing(name, scale=0.6)
        assert validate_global_routing(routing) == []
        assert routing.num_two_pin_nets >= routing.netlist.num_nets
