"""Tests for hierarchical encoding composition, anchored on the paper's
§4 worked example (Fig. 1.c/1.d) and its ⌈K/n⌉ variable-count formula."""

import pytest

from repro.core.encodings import (Level, build_vertex_encoding, get_encoding,
                                  split_sizes, ITE_LINEAR, ITE_LOG, MULDIRECT,
                                  DIRECT)
from repro.core.patterns import pattern_holds, patterns_are_distinct


class TestSplitSizes:
    def test_even(self):
        assert split_sizes(12, 4) == [3, 3, 3, 3]

    def test_remainder_goes_first(self):
        assert split_sizes(13, 4) == [4, 3, 3, 3]

    def test_single_part(self):
        assert split_sizes(5, 1) == [5]

    def test_rejects_more_parts_than_values(self):
        with pytest.raises(ValueError):
            split_sizes(2, 3)

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            split_sizes(2, 0)


class TestValidation:
    def test_upper_level_needs_var_count(self):
        with pytest.raises(ValueError):
            build_vertex_encoding(6, [Level(ITE_LOG, None), Level(MULDIRECT)])

    def test_final_level_must_not_fix_vars(self):
        with pytest.raises(ValueError):
            build_vertex_encoding(6, [Level(ITE_LOG, 2), Level(MULDIRECT, 2)])

    def test_needs_at_least_one_level(self):
        with pytest.raises(ValueError):
            build_vertex_encoding(6, [])

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            build_vertex_encoding(0, [Level(MULDIRECT)])


class TestFigure1d:
    """ITE-log-2+ITE-linear on 13 values (paper Fig. 1.d and §4 text)."""

    def setup_method(self):
        self.encoding = build_vertex_encoding(
            13, [Level(ITE_LOG, 2), Level(ITE_LINEAR)])

    def test_variable_count(self):
        # 2 top variables + 3 chain variables for the largest subdomain (4).
        assert self.encoding.num_vars == 5

    def test_subdomain_sizes_are_4_3_3_3(self):
        # Values 0-3 share top pattern (i0, i1); 4-6 get (i0, -i1), etc.
        patterns = self.encoding.patterns
        assert patterns[0][:2] == (1, 2)
        assert patterns[4][:2] == (1, -2)
        assert patterns[7][:2] == (-1, 2)
        assert patterns[10][:2] == (-1, -2)

    def test_paper_example_patterns(self):
        """§4: v4 ↔ i0·¬i1·i2; v5 ↔ i0·¬i1·¬i2·i3; v6 ↔ i0·¬i1·¬i2·¬i3."""
        patterns = self.encoding.patterns
        assert patterns[4] == (1, -2, 3)
        assert patterns[5] == (1, -2, -3, 4)
        assert patterns[6] == (1, -2, -3, -4)

    def test_smaller_trees_mean_no_structural_clauses(self):
        assert self.encoding.clauses == []

    def test_exactly_one_value_per_assignment(self):
        for bits in range(2 ** self.encoding.num_vars):
            values = [(bits >> i) & 1 == 1 for i in range(self.encoding.num_vars)]
            selected = [v for v, p in enumerate(self.encoding.patterns)
                        if pattern_holds(p, values)]
            assert len(selected) == 1

    def test_paper_conflict_clause_example(self):
        """§4's worked conflict clause for v4 between two adjacent CSP
        variables: (¬i0 ∨ i1 ∨ ¬i2 ∨ ¬j0 ∨ j1 ∨ ¬j2)."""
        from repro.coloring import ColoringProblem, Graph
        problem = ColoringProblem(Graph(2, [(0, 1)]), 13)
        encoded = get_encoding("ITE-log-2+ITE-linear").encode(problem)
        # Vertex w's block starts at offset 5, so j0=6, j1=7, j2=8.
        expected = (-1, 2, -3, -6, 7, -8)
        assert expected in {tuple(c) for c in encoded.cnf.clauses}


class TestFigure1c:
    """ITE-log-1+ITE-linear on 13 values (Fig. 1.c): one top variable
    splitting into subdomains of 7 and 6."""

    def setup_method(self):
        self.encoding = build_vertex_encoding(
            13, [Level(ITE_LOG, 1), Level(ITE_LINEAR)])

    def test_variable_count(self):
        assert self.encoding.num_vars == 1 + 6  # chain for 7 values

    def test_subdomain_boundary(self):
        patterns = self.encoding.patterns
        assert patterns[0][0] == 1       # first subdomain under i0
        assert patterns[6][0] == 1
        assert patterns[7][0] == -1      # second subdomain under ¬i0
        # second subdomain has 6 values and reuses chain vars 2..6
        assert patterns[7][1:] == (2,)
        assert patterns[12][1:] == (-2, -3, -4, -5, -6)


class TestVariableCountFormula:
    def test_muldirect_top_formula(self):
        """§4: with muldirect-n on top of K values, the second-level
        muldirect uses ⌈K/n⌉ variables."""
        for total, top in [(13, 3), (12, 3), (9, 3), (10, 2), (7, 3)]:
            encoding = build_vertex_encoding(
                total, [Level(MULDIRECT, top), Level(MULDIRECT)])
            expected_bottom = -(-total // top)  # ceil
            assert encoding.num_vars == top + expected_bottom

    def test_exclusion_clauses_for_small_subdomains(self):
        # 13 = 5+4+4: subdomains 1 and 2 must not select position 4.
        encoding = build_vertex_encoding(
            13, [Level(MULDIRECT, 3), Level(MULDIRECT)])
        # structural: two ALO clauses + 2 exclusion clauses
        alo = [c for c in encoding.clauses if all(l > 0 for l in c)]
        exclusions = [c for c in encoding.clauses if all(l < 0 for l in c)]
        assert len(alo) == 2
        assert sorted(exclusions) == [(-3, -8), (-2, -8)] or \
            sorted(exclusions) == [(-2, -8), (-3, -8)]

    def test_no_exclusions_when_division_is_exact(self):
        encoding = build_vertex_encoding(
            12, [Level(MULDIRECT, 3), Level(MULDIRECT)])
        exclusions = [c for c in encoding.clauses if all(l < 0 for l in c)]
        assert exclusions == []


class TestDegenerateDomains:
    def test_domain_smaller_than_fanout(self):
        # 2 values under a 3-way top level: collapses to 2 subdomains.
        encoding = build_vertex_encoding(
            2, [Level(DIRECT, 3), Level(MULDIRECT)])
        assert encoding.num_values == 2
        assert len(encoding.patterns) == 2
        assert patterns_are_distinct(encoding.patterns)

    def test_single_value_domain(self):
        encoding = build_vertex_encoding(
            1, [Level(ITE_LOG, 2), Level(ITE_LINEAR)])
        assert len(encoding.patterns) == 1

    def test_three_level_hierarchy(self):
        # Not used in the paper's experiments but supported by the general
        # construction: muldirect-2 + muldirect-2 + muldirect.
        encoding = build_vertex_encoding(
            12, [Level(MULDIRECT, 2), Level(MULDIRECT, 2), Level(MULDIRECT)])
        assert len(encoding.patterns) == 12
        assert patterns_are_distinct(encoding.patterns)
        assert encoding.num_vars == 2 + 2 + 3
