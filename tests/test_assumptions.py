"""Tests for assumption-based and incremental CDCL solving."""

import pytest

from repro.sat import CNF, solve_by_enumeration
from repro.sat.solver.cdcl import CDCLSolver
from .strategies import make_random_cnf


class TestAssumptions:
    def test_sat_under_assumptions(self):
        solver = CDCLSolver(CNF([[1, 2], [-1, 2]]))
        result = solver.solve([1])
        assert result.is_sat
        assert result.model.value(1) is True
        assert result.model.value(2) is True

    def test_unsat_under_assumptions_but_sat_without(self):
        solver = CDCLSolver(CNF([[1, 2], [-1, -2]]))
        assert not solver.solve([1, 2]).is_sat
        result = solver.solve()
        assert result.is_sat

    def test_assumption_failed_flag(self):
        solver = CDCLSolver(CNF([[1]]))
        result = solver.solve([-1])
        assert not result.is_sat
        assert result.stats.get("assumption_failed") == 1
        # A plain unconditional call clears the flag.
        result = solver.solve()
        assert result.is_sat
        assert "assumption_failed" not in result.stats

    def test_redundant_assumptions(self):
        solver = CDCLSolver(CNF([[1], [1, 2]]))
        result = solver.solve([1, 1, 2])
        assert result.is_sat

    def test_out_of_range_assumption_rejected(self):
        solver = CDCLSolver(CNF([[1]]))
        with pytest.raises(ValueError):
            solver.solve([5])

    def test_conflicting_assumptions(self):
        solver = CDCLSolver(CNF([[1, 2]], num_vars=2))
        assert not solver.solve([1, -1]).is_sat

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_unit_augmented_formula(self, seed):
        """solve(assumptions) must agree with solving cnf + unit clauses."""
        import random
        rng = random.Random(seed)
        cnf = make_random_cnf(num_vars=8, num_clauses=25, seed=seed + 4000)
        assumptions = [rng.choice([1, -1]) * v
                       for v in rng.sample(range(1, 9), 3)]
        augmented = cnf.copy()
        for lit in assumptions:
            augmented.add_clause([lit])
        expected = solve_by_enumeration(augmented).is_sat
        solver = CDCLSolver(cnf)
        result = solver.solve(assumptions)
        assert result.is_sat == expected
        if expected:
            assert result.model.satisfies(augmented)


class TestIncrementalReuse:
    def test_many_calls_on_one_solver(self):
        cnf = make_random_cnf(num_vars=10, num_clauses=30, seed=77)
        solver = CDCLSolver(cnf)
        baseline = solver.solve().is_sat
        for lit in (1, -1, 5, -5):
            augmented = cnf.copy()
            augmented.add_clause([lit])
            expected = solve_by_enumeration(augmented).is_sat
            assert solver.solve([lit]).is_sat == expected
        # Unconditional answer unchanged after assumption calls.
        assert solver.solve().is_sat == baseline

    def test_learned_clauses_persist(self):
        from .test_cdcl import pigeonhole
        cnf = pigeonhole(5)
        solver = CDCLSolver(cnf)
        assert not solver.solve().is_sat
        first_conflicts = solver.stats["conflicts"]
        # Second unconditional call reuses the learned refutation and
        # needs (almost) no new conflicts.
        assert not solver.solve().is_sat
        assert solver.stats["conflicts"] - first_conflicts \
            < first_conflicts / 2 + 10


class TestIncrementalColoring:
    def _problem(self, seed=5, n=9, p=0.5):
        from .strategies import make_random_graph
        from repro.coloring import ColoringProblem
        return ColoringProblem(make_random_graph(n, p, seed), 1)

    def test_matches_oracle(self):
        from repro.coloring import chromatic_number
        from repro.core import Strategy
        from repro.core.incremental import minimum_colors_incremental
        for seed in range(6):
            problem = self._problem(seed=seed, n=8)
            expected = chromatic_number(problem.graph)
            got = minimum_colors_incremental(
                problem, Strategy("ITE-linear-2+muldirect", "s1"))
            assert got == expected

    def test_matches_non_incremental(self):
        from repro.core import Strategy, minimum_colors
        from repro.core.incremental import IncrementalColoringSolver
        strategy = Strategy("muldirect", "b1")
        problem = self._problem(seed=11, n=10)
        incremental = IncrementalColoringSolver(problem, strategy)
        assert incremental.minimum_colors() \
            == minimum_colors(problem, strategy)

    def test_queries_share_learning(self):
        """Mycielski-4 has clique bound 2 but chromatic number 4, so the
        binary search issues several real queries; re-running the
        decisive UNSAT query afterwards must be (almost) free thanks to
        the persistent learned clauses."""
        from repro.coloring import ColoringProblem
        from repro.coloring.instances import mycielski_graph
        from repro.core import Strategy
        from repro.core.incremental import IncrementalColoringSolver
        problem = ColoringProblem(mycielski_graph(4), 1)
        solver = IncrementalColoringSolver(problem, Strategy("ITE-log", "s1"))
        chi = solver.minimum_colors()
        assert chi == 4
        assert solver.stats.queries >= 1
        first_pass = list(solver.stats.conflicts_per_query)
        assert not solver.is_colorable(3)
        assert solver.stats.conflicts_per_query[-1] <= max(first_pass)

    def test_coloring_decode(self):
        from repro.core import Strategy
        from repro.core.incremental import IncrementalColoringSolver
        problem = self._problem(seed=9)
        solver = IncrementalColoringSolver(problem,
                                           Strategy("direct-3+muldirect", "s1"))
        chi = solver.minimum_colors()
        coloring = solver.coloring(chi)
        assert problem.with_colors(chi).is_valid_coloring(coloring)
        with pytest.raises(ValueError):
            solver.coloring(chi - 1) if chi > 1 else None

    def test_bad_query_range(self):
        from repro.core import Strategy
        from repro.core.incremental import IncrementalColoringSolver
        solver = IncrementalColoringSolver(self._problem(),
                                           Strategy("muldirect"))
        with pytest.raises(ValueError):
            solver.is_colorable(0)
        with pytest.raises(ValueError):
            solver.is_colorable(solver.max_colors + 1)

    @pytest.mark.parametrize("encoding", ["muldirect", "log", "ITE-linear",
                                          "ITE-log-2+muldirect"])
    def test_across_encodings(self, encoding):
        from repro.coloring import chromatic_number
        from repro.core import Strategy
        from repro.core.incremental import minimum_colors_incremental
        problem = self._problem(seed=21, n=8)
        assert minimum_colors_incremental(problem, Strategy(encoding, "s1")) \
            == chromatic_number(problem.graph)
