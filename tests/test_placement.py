"""Tests for logical netlists and the annealing placer."""

import pytest

from repro.fpga import (AnnealingPlacer, LogicalNet, LogicalNetlist,
                        Placement, place_netlist, random_logical_netlist,
                        route_netlist, validate_global_routing)


class TestLogicalNet:
    def test_valid(self):
        net = LogicalNet("a", 0, (1, 2))
        assert net.blocks == [0, 1, 2]

    def test_no_sinks(self):
        with pytest.raises(ValueError):
            LogicalNet("a", 0, ())

    def test_source_as_sink(self):
        with pytest.raises(ValueError):
            LogicalNet("a", 0, (0,))

    def test_duplicate_sink(self):
        with pytest.raises(ValueError):
            LogicalNet("a", 0, (1, 1))


class TestLogicalNetlist:
    def test_block_range_checked(self):
        with pytest.raises(ValueError):
            LogicalNetlist("t", 2, [LogicalNet("a", 0, (2,))])

    def test_random_generator_deterministic(self):
        a = random_logical_netlist(10, 20, seed=4)
        b = random_logical_netlist(10, 20, seed=4)
        assert [(n.source, n.sinks) for n in a.nets] \
            == [(n.source, n.sinks) for n in b.nets]

    def test_random_generator_bounds(self):
        netlist = random_logical_netlist(6, 15, seed=1, max_fanout=2)
        assert all(1 <= n.fanout if hasattr(n, "fanout") else True
                   for n in netlist.nets)
        assert all(len(n.sinks) <= 2 for n in netlist.nets)


class TestPlacement:
    def test_duplicate_position_rejected(self):
        with pytest.raises(ValueError):
            Placement(2, 2, {0: (0, 0), 1: (0, 0)})

    def test_off_grid_rejected(self):
        with pytest.raises(ValueError):
            Placement(2, 2, {0: (2, 0)})

    def test_wirelength(self):
        netlist = LogicalNetlist("t", 3, [LogicalNet("a", 0, (1, 2))])
        placement = Placement(3, 3, {0: (0, 0), 1: (2, 0), 2: (0, 2)})
        assert placement.wirelength(netlist) == 4

    def test_to_netlist(self):
        netlist = LogicalNetlist("t", 2, [LogicalNet("a", 0, (1,))])
        placement = Placement(2, 1, {0: (0, 0), 1: (1, 0)})
        placed = placement.to_netlist(netlist)
        assert placed.nets[0].source == (0, 0)
        assert placed.nets[0].sinks == ((1, 0),)


class TestAnnealer:
    def test_too_many_blocks_rejected(self):
        placer = AnnealingPlacer(2, 2)
        with pytest.raises(ValueError):
            placer.place(random_logical_netlist(5, 3, seed=0))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AnnealingPlacer(0, 2)
        with pytest.raises(ValueError):
            AnnealingPlacer(2, 2, cooling=1.0)

    def test_deterministic_per_seed(self):
        netlist = random_logical_netlist(12, 25, seed=2)
        a = AnnealingPlacer(4, 4, seed=7).place(netlist)
        b = AnnealingPlacer(4, 4, seed=7).place(netlist)
        assert a.positions == b.positions

    def test_improves_over_random(self):
        netlist = random_logical_netlist(16, 40, seed=3)
        placer = AnnealingPlacer(5, 5, seed=1)
        import random as _random
        rng = _random.Random(99)
        cells = [(x, y) for x in range(5) for y in range(5)]
        rng.shuffle(cells)
        random_placement = Placement(5, 5, {b: cells[b] for b in range(16)})
        annealed = placer.place(netlist)
        assert annealed.wirelength(netlist) \
            <= random_placement.wirelength(netlist)

    def test_clustered_nets_placed_near_each_other(self):
        # Two tight 4-cliques of nets should not be interleaved: the
        # annealed wirelength must be near the lower bound.
        nets = []
        for base, prefix in ((0, "a"), (4, "b")):
            for i in range(4):
                for j in range(i + 1, 4):
                    nets.append(LogicalNet(f"{prefix}{i}{j}",
                                           base + i, (base + j,)))
        netlist = LogicalNetlist("clusters", 8, nets)
        placement = AnnealingPlacer(4, 2, seed=0).place(netlist)
        # Lower bound: each clique fits a 2x2 square; 6 intra-clique nets
        # have wirelength >= 1, several >= 2.
        assert placement.wirelength(netlist) <= 20

    def test_placed_netlist_routes(self):
        netlist = random_logical_netlist(12, 30, seed=5)
        placed = place_netlist(netlist, 4, 4, seed=2)
        routing = route_netlist(placed)
        assert validate_global_routing(routing) == []
