"""Tests for repro.obs: tracing, metrics registry, reporting, CLI."""

import json
import os

import pytest

from repro import obs
from repro.cli import main
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.report import (metrics_snapshots, parse_trace_file,
                              render_metrics, render_trace)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Observability state is process-global; isolate every test."""
    os.environ.pop(trace.ENV_VAR, None)
    os.environ.pop(obs_metrics.ENV_VAR, None)
    obs.reset()
    yield
    os.environ.pop(trace.ENV_VAR, None)
    os.environ.pop(obs_metrics.ENV_VAR, None)
    obs.reset()


class TestSpans:
    def test_disabled_span_measures_but_records_nothing(self):
        assert not trace.enabled()
        with trace.span("phase", label="x") as span:
            trace.event("something", detail=1)
            sum(range(1000))
        assert span.wall >= 0.0 and span.cpu >= 0.0
        assert span.span_id is None
        assert span.events == []
        assert trace.tracer().drain_spans() == []

    def test_enabled_spans_nest_into_a_tree(self):
        trace.enable()
        with trace.span("outer", kind="race") as outer:
            with trace.span("inner") as inner:
                inner.set("status", "SAT")
                inner.add_event("solver.finish", conflicts=3)
        records = trace.tracer().drain_spans()
        assert [r["name"] for r in records] == ["inner", "outer"]
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["attrs"] == {"kind": "race"}
        assert by_name["inner"]["attrs"]["status"] == "SAT"
        events = by_name["inner"]["events"]
        assert events[0]["name"] == "solver.finish"
        assert events[0]["attrs"] == {"conflicts": 3}

    def test_event_lands_on_innermost_open_span(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                trace.event("mark")
        by_name = {r["name"]: r for r in trace.tracer().drain_spans()}
        assert "events" in by_name["inner"]
        assert "events" not in by_name["outer"]

    def test_event_without_open_span_is_an_orphan_record(self):
        trace.enable()
        trace.event("quarantine.offence", label="direct")
        (record,) = trace.tracer().drain_spans()
        assert record["type"] == "event"
        assert record["name"] == "quarantine.offence"
        assert record["parent"] is None

    def test_exception_marks_the_span(self):
        trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        (record,) = trace.tracer().drain_spans()
        assert record["attrs"]["error"] == "RuntimeError"

    def test_span_ids_carry_the_pid(self):
        trace.enable()
        with trace.span("a") as span:
            pass
        assert span.span_id.startswith(f"{os.getpid()}-")


class TestSinkRoundTrip:
    def test_flush_and_parse(self, tmp_path):
        path = str(tmp_path / "run.trace.jsonl")
        trace.enable(path)
        with trace.span("solve", engine="arena"):
            trace.event("solver.finish", status="SAT")
        written = trace.tracer().flush()
        assert written == 1
        records = parse_trace_file(path)
        assert records[0]["name"] == "solve"
        assert records[0]["run"] == trace.tracer().run_id
        # The buffer is cleared: a second flush appends nothing.
        assert trace.tracer().flush() == 0
        assert len(parse_trace_file(path)) == 1

    def test_flush_appends_extra_records(self, tmp_path):
        path = str(tmp_path / "run.trace.jsonl")
        trace.enable(path)
        with trace.span("solve"):
            pass
        obs_metrics.enable()
        obs_metrics.registry().inc("pipeline.solves")
        extra = [obs_metrics.snapshot_record(trace.tracer().run_id)]
        assert trace.tracer().flush(extra_records=extra) == 2
        records = parse_trace_file(path)
        (snap,) = metrics_snapshots(records)
        assert snap["counters"]["pipeline.solves"] == 1

    def test_parse_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            parse_trace_file(str(path))
        path.write_text('["a", "list"]\n')
        with pytest.raises(ValueError, match="not a trace record"):
            parse_trace_file(str(path))

    def test_env_var_activates_tracing(self, tmp_path):
        os.environ[trace.ENV_VAR] = str(tmp_path / "env.trace.jsonl")
        assert trace.enabled()
        assert trace.tracer().sink_path == os.environ[trace.ENV_VAR]


class TestCrossProcessPlumbing:
    def test_ingest_reparents_roots_and_restamps_run(self):
        trace.enable()
        worker_records = [
            {"type": "span", "run": "worker-run", "id": "999-1",
             "parent": None, "name": "coloring.solve", "wall": 0.5},
            {"type": "span", "run": "worker-run", "id": "999-2",
             "parent": "999-1", "name": "encode", "wall": 0.1},
        ]
        trace.tracer().ingest_spans(worker_records, parent_id="1-1")
        ingested = trace.tracer().drain_spans()
        run_id = trace.tracer().run_id
        assert all(r["run"] == run_id for r in ingested)
        assert ingested[0]["parent"] == "1-1"      # root re-parented
        assert ingested[1]["parent"] == "999-1"    # child untouched
        # Originals are not mutated (queue payloads may be reused).
        assert worker_records[0]["run"] == "worker-run"

    def test_drain_telemetry_none_when_disabled(self):
        assert obs.drain_telemetry() is None

    def test_drain_and_ingest_telemetry(self):
        trace.enable()
        obs_metrics.enable()
        with trace.span("coloring.solve"):
            pass
        obs_metrics.registry().inc("solver.solves")
        telemetry = obs.drain_telemetry()
        assert telemetry["metrics"]["counters"]["solver.solves"] == 1

        obs.reset()
        trace.enable()
        obs_metrics.enable()
        obs.ingest_telemetry(telemetry, parent_span_id="7-1")
        (record,) = trace.tracer().drain_spans()
        assert record["parent"] == "7-1"
        snap = obs_metrics.registry().snapshot()
        assert snap["counters"]["solver.solves"] == 1

    def test_worker_begin_drops_inherited_buffers_and_sink(self):
        trace.enable("/tmp/parent.trace.jsonl")
        with trace.span("parent.phase"):
            pass
        assert trace.tracer()._records
        obs.worker_begin()
        assert trace.tracer().drain_spans() == []
        assert trace.tracer().sink_path is None   # workers never write
        assert trace.tracer().enabled             # but still record


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = obs_metrics.MetricsRegistry()
        reg.inc("c", 2)
        reg.inc("c")
        reg.set_gauge("g", 1.5)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 1.5
        hist = snap["histograms"]["h"]
        assert hist == {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0,
                        "mean": 2.0}

    def test_merge_adds_counters_and_combines_histograms(self):
        a = obs_metrics.MetricsRegistry()
        b = obs_metrics.MetricsRegistry()
        a.inc("solver.conflicts", 10)
        a.observe("solver.solve_time", 0.5)
        a.set_gauge("g", 1.0)
        b.inc("solver.conflicts", 5)
        b.observe("solver.solve_time", 1.5)
        b.set_gauge("g", 2.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["solver.conflicts"] == 15
        hist = snap["histograms"]["solver.solve_time"]
        assert hist["count"] == 2 and hist["min"] == 0.5
        assert hist["max"] == 1.5
        assert snap["gauges"]["g"] == 2.0  # gauges take incoming value
        a.merge(None)                      # tolerated

    def test_absorb_solver_stats_is_delta_based(self):
        obs_metrics.enable()
        reg = obs_metrics.registry()
        stats = {"conflicts": 10.0, "propagations": 100.0,
                 "solve_time": 0.2, "props_per_sec": 500.0}
        marker = obs_metrics.absorb_solver_stats(stats, engine="arena")
        # Second solve() on the same (incremental) solver: stats are
        # cumulative, only the delta may land.
        stats2 = dict(stats, conflicts=14.0, propagations=160.0)
        obs_metrics.absorb_solver_stats(stats2, engine="arena",
                                        prev=marker)
        snap = reg.snapshot()
        assert snap["counters"]["solver.conflicts"] == 14
        assert snap["counters"]["solver.propagations"] == 160
        assert snap["counters"]["solver.solves"] == 2
        assert snap["counters"]["solver.solves.arena"] == 2
        assert snap["histograms"]["solver.solve_time"]["count"] == 2

    def test_env_var_activates_metrics(self):
        os.environ[obs_metrics.ENV_VAR] = "1"
        assert obs_metrics.enabled()

    def test_reset_disables_and_clears(self):
        obs_metrics.enable()
        obs_metrics.registry().inc("x")
        obs_metrics.reset()
        assert not obs_metrics.enabled()
        assert obs_metrics.registry().empty


class TestRendering:
    RECORDS = [
        {"type": "span", "run": "r1", "id": "1-1", "parent": None,
         "name": "portfolio.race", "wall": 1.0, "cpu": 0.2,
         "attrs": {"members": 2, "winner": "direct"}},
        {"type": "span", "run": "r1", "id": "1-2", "parent": "1-1",
         "name": "coloring.solve", "wall": 0.8, "cpu": 0.1,
         "attrs": {"strategy": "direct"},
         "events": [{"name": "solver.finish", "t": 0.7,
                     "attrs": {"status": "SAT"}}]},
        {"type": "span", "run": "r1", "id": "1-3", "parent": "1-1",
         "name": "audit", "wall": 0.1, "cpu": 0.05},
        {"type": "event", "run": "r1", "parent": None,
         "name": "quarantine.offence", "attrs": {"label": "direct"}},
        {"type": "metrics", "run": "r1",
         "metrics": {"counters": {"solver.solves": 2}, "gauges": {},
                     "histograms": {"solver.solve_time": {
                         "count": 2, "sum": 1.0, "min": 0.4,
                         "max": 0.6, "mean": 0.5}}}},
    ]

    def test_render_trace_tree_and_critical_path(self):
        text = render_trace(self.RECORDS)
        assert "3 spans, 1 root(s)" in text
        assert "portfolio.race" in text and "coloring.solve" in text
        # The race and its largest-wall child are on the critical path;
        # the cheap audit span is not.
        race_line = next(l for l in text.splitlines()
                         if "portfolio.race" in l)
        solve_line = next(l for l in text.splitlines()
                          if "coloring.solve" in l)
        audit_line = next(l for l in text.splitlines()
                          if l.strip().startswith(("`- audit", "|- audit")))
        assert race_line.endswith("*") and solve_line.endswith("*")
        assert not audit_line.endswith("*")
        assert "solver.finish" in text          # span event rendered
        assert "quarantine.offence" in text     # orphan event rendered
        assert "metrics snapshots: 1" in text

    def test_render_trace_event_cap(self):
        span = {"type": "span", "run": "r", "id": "1-1", "parent": None,
                "name": "s", "wall": 0.0, "cpu": 0.0,
                "events": [{"name": f"e{i}", "t": 0.0} for i in range(5)]}
        text = render_trace([span], max_events=2)
        assert "3 more event(s)" in text
        assert "e4" not in text
        assert "e0" not in render_trace([span], show_events=False)

    def test_render_metrics(self):
        snap = {"counters": {"solver.solves": 2},
                "gauges": {"bench.headline_bcp_speedup": 1.8},
                "histograms": {"solver.solve_time": {
                    "count": 2, "sum": 1.0, "min": 0.4, "max": 0.6,
                    "mean": 0.5}}}
        text = render_metrics(snap)
        assert "solver.solves" in text
        assert "bench.headline_bcp_speedup" in text
        assert "solver.solve_time" in text
        assert render_metrics({}) == "no metrics recorded"


class TestEndToEnd:
    """Tracing through the real pipeline and the CLI."""

    @pytest.fixture()
    def cycle5(self, tmp_path):
        col = str(tmp_path / "c5.col")
        with open(col, "w") as handle:
            handle.write("p edge 5 5\ne 1 2\ne 2 3\ne 3 4\ne 4 5\ne 5 1\n")
        return col

    def test_pipeline_emits_encode_and_solve_spans(self, cycle5):
        from repro.coloring import ColoringProblem, parse_col_file
        from repro.core import Strategy, solve_coloring

        trace.enable()
        problem = ColoringProblem(parse_col_file(cycle5), 3)
        outcome = solve_coloring(problem, Strategy("direct"))
        assert outcome.is_sat
        names = [r["name"] for r in trace.tracer().drain_spans()
                 if r["type"] == "span"]
        assert "coloring.solve" in names
        assert "encode" in names and "encode.cnf" in names
        assert "solve" in names

    def test_cli_trace_flag_writes_a_renderable_file(self, cycle5,
                                                     tmp_path, capsys):
        out = str(tmp_path / "color.trace.jsonl")
        assert main(["color", cycle5, "--colors", "3",
                     "--trace", out]) == 10
        assert "wrote trace:" in capsys.readouterr().err
        records = parse_trace_file(out)
        names = {r["name"] for r in records if r["type"] == "span"}
        assert "coloring.solve" in names and "solve" in names
        assert any(r["type"] == "metrics" for r in records)
        # The flag must not leave observability on for later runs.
        assert not trace.tracer().enabled
        assert not obs_metrics.enabled()

        assert main(["trace", out]) == 0
        rendered = capsys.readouterr().out
        assert "coloring.solve" in rendered and "spans" in rendered

        assert main(["metrics", out]) == 0
        assert "solver.solves" in capsys.readouterr().out

    def test_cli_trace_command_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nope\n")
        assert main(["trace", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_cli_metrics_without_snapshot_exits_nonzero(self, tmp_path,
                                                        capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text(json.dumps(
            {"type": "span", "run": "r", "id": "1-1", "parent": None,
             "name": "s", "wall": 0.0, "cpu": 0.0}) + "\n")
        assert main(["metrics", str(path)]) == 1
        assert "no metrics" in capsys.readouterr().err

    def test_trajectories_identical_with_tracing_on(self, cycle5):
        from repro.coloring import ColoringProblem, parse_col_file
        from repro.core import Strategy, solve_coloring

        problem = ColoringProblem(parse_col_file(cycle5), 3)
        baseline = solve_coloring(problem, Strategy("direct"))
        trace.enable()
        obs_metrics.enable()
        traced = solve_coloring(problem, Strategy("direct"))
        assert traced.status == baseline.status
        assert traced.solver_stats["conflicts"] == \
            baseline.solver_stats["conflicts"]
        assert traced.solver_stats["decisions"] == \
            baseline.solver_stats["decisions"]
        assert traced.coloring == baseline.coloring
