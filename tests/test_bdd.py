"""Tests for the BDD baseline engine."""

import pytest
from hypothesis import given, settings

from repro.sat import CNF, solve_by_enumeration
from repro.sat.bdd import (BDDLimitExceeded, BDDManager, ONE, ZERO,
                           cnf_to_bdd, solve_bdd)
from repro.sat.solver.enumerate import count_models
from .strategies import make_random_cnf, small_cnfs


class TestManager:
    def test_terminals(self):
        manager = BDDManager(3)
        assert manager.is_satisfiable(ONE)
        assert not manager.is_satisfiable(ZERO)

    def test_reduction_rule(self):
        manager = BDDManager(2)
        assert manager.make_node(1, ONE, ONE) == ONE

    def test_unique_table(self):
        manager = BDDManager(2)
        a = manager.make_node(1, ZERO, ONE)
        b = manager.make_node(1, ZERO, ONE)
        assert a == b
        assert manager.num_nodes == 3

    def test_literal(self):
        manager = BDDManager(2)
        positive = manager.literal(1)
        negative = manager.literal(-1)
        assert manager.apply_not(positive) == negative

    def test_var_out_of_range(self):
        with pytest.raises(ValueError):
            BDDManager(2).make_node(3, ZERO, ONE)

    def test_node_limit(self):
        manager = BDDManager(10, node_limit=4)
        with pytest.raises(BDDLimitExceeded):
            for var in range(1, 11):
                manager.literal(var)


class TestOperations:
    def test_and_or_not_laws(self):
        manager = BDDManager(3)
        x, y = manager.literal(1), manager.literal(2)
        assert manager.apply_and(x, manager.apply_not(x)) == ZERO
        assert manager.apply_or(x, manager.apply_not(x)) == ONE
        # De Morgan
        left = manager.apply_not(manager.apply_and(x, y))
        right = manager.apply_or(manager.apply_not(x), manager.apply_not(y))
        assert left == right

    def test_ite_shortcuts(self):
        manager = BDDManager(2)
        x = manager.literal(1)
        assert manager.ite(ONE, x, ZERO) == x
        assert manager.ite(ZERO, x, ONE) == ONE
        assert manager.ite(x, ONE, ZERO) == x

    def test_clause(self):
        manager = BDDManager(3)
        clause = manager.clause([1, -2, 3])
        # Falsified only by x1=0, x2=1, x3=0.
        assert manager.count_models(clause) == 7

    def test_canonicity_of_equivalent_formulas(self):
        manager = BDDManager(3)
        # (x1 & x2) | (x1 & x3) == x1 & (x2 | x3)
        a = manager.apply_or(
            manager.apply_and(manager.literal(1), manager.literal(2)),
            manager.apply_and(manager.literal(1), manager.literal(3)))
        b = manager.apply_and(
            manager.literal(1),
            manager.apply_or(manager.literal(2), manager.literal(3)))
        assert a == b


class TestCounting:
    def test_terminal_counts(self):
        manager = BDDManager(3)
        assert manager.count_models(ONE) == 8
        assert manager.count_models(ZERO) == 0

    def test_single_literal(self):
        manager = BDDManager(3)
        assert manager.count_models(manager.literal(2)) == 4

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_enumeration(self, seed):
        cnf = make_random_cnf(num_vars=6, num_clauses=12, seed=seed + 500)
        manager, root = cnf_to_bdd(cnf)
        assert manager.count_models(root) == count_models(cnf)


class TestSolveBDD:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_oracle(self, seed):
        cnf = make_random_cnf(num_vars=8, num_clauses=25, seed=seed + 600)
        expected = solve_by_enumeration(cnf).is_sat
        result = solve_bdd(cnf)
        assert result.is_sat == expected
        if expected:
            assert result.model.satisfies(cnf)

    @settings(max_examples=40, deadline=None)
    @given(small_cnfs(max_vars=6, max_clauses=14))
    def test_property_matches_enumeration(self, cnf):
        assert (solve_bdd(cnf).is_sat
                == solve_by_enumeration(cnf).is_sat)

    def test_unsat_routing_instance(self):
        """BDDs decide a small unroutable configuration too — the contrast
        with CDCL is scale, not capability."""
        from repro.coloring import ColoringProblem, complete_graph
        from repro.core import get_encoding
        problem = ColoringProblem(complete_graph(4), 3)
        encoded = get_encoding("log").encode(problem)
        assert not solve_bdd(encoded.cnf).is_sat

    def test_blowup_on_larger_instance(self):
        """The Wood & Rutenbar failure mode: a routing formula that CDCL
        dispatches instantly exhausts a small BDD node budget."""
        from repro.core import Strategy, solve_coloring
        from repro.fpga import build_routing_csp, load_routing
        from repro.core import get_encoding
        routing = load_routing("alu2", scale=0.8)
        csp = build_routing_csp(routing, 4)
        encoded = get_encoding("muldirect").encode(csp.problem)
        with pytest.raises(BDDLimitExceeded):
            solve_bdd(encoded.cnf, node_limit=20_000)
        # CDCL handles the same formula without drama.
        outcome = solve_coloring(csp.problem, Strategy("muldirect", "s1"))
        assert outcome.solve_time < 30.0
