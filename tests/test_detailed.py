"""Tests for the routing-to-coloring reduction (conflict graph)."""

import pytest

from repro.coloring import parse_col_string
from repro.fpga import (CircuitSpec, Net, Netlist, build_conflict_graph,
                        build_routing_csp, generate_netlist, route_netlist)


def contended_netlist():
    """Three nets forced through the same 1-wide corridor."""
    nets = [Net(f"n{i}", (0, 0), ((3, 0),)) for i in range(3)]
    return Netlist("t", 4, 1, nets)


class TestConflictGraph:
    def test_conflicting_nets_get_edges(self):
        routing = route_netlist(contended_netlist(), congestion_penalty=0.0)
        graph = build_conflict_graph(routing)
        # All three 2-pin nets share the straight-line channel.
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_same_parent_net_never_conflicts(self):
        # One net with two sinks along the same channel.
        netlist = Netlist("t", 5, 1, [Net("a", (0, 0), ((2, 0), (4, 0)))])
        routing = route_netlist(netlist, congestion_penalty=0.0)
        graph = build_conflict_graph(routing)
        assert graph.num_vertices == 2
        assert graph.num_edges == 0

    def test_disjoint_routes_never_conflict(self):
        netlist = Netlist("t", 4, 4, [
            Net("a", (0, 0), ((1, 0),)),
            Net("b", (0, 3), ((1, 3),)),
        ])
        routing = route_netlist(netlist)
        assert build_conflict_graph(routing).num_edges == 0

    def test_edge_imposed_once_despite_long_overlap(self):
        # Two nets sharing a multi-segment corridor still get one edge.
        netlist = Netlist("t", 6, 1, [
            Net("a", (0, 0), ((5, 0),)),
            Net("b", (0, 0), ((5, 0),)),
        ])
        routing = route_netlist(netlist, congestion_penalty=0.0)
        graph = build_conflict_graph(routing)
        assert graph.num_edges == 1

    def test_random_circuit_vertex_count(self):
        netlist = generate_netlist(CircuitSpec("c", 8, 8, 50, seed=31))
        routing = route_netlist(netlist)
        graph = build_conflict_graph(routing)
        assert graph.num_vertices == routing.num_two_pin_nets


class TestRoutingCSP:
    def test_build(self):
        routing = route_netlist(contended_netlist(), congestion_penalty=0.0)
        csp = build_routing_csp(routing, 3)
        assert csp.width == 3
        assert csp.problem.num_colors == 3
        assert csp.num_two_pin_nets == 3
        assert csp.build_time >= 0
        assert csp.two_pin(0).net_index == 0

    def test_width_validation(self):
        routing = route_netlist(contended_netlist())
        with pytest.raises(ValueError):
            build_routing_csp(routing, 0)

    def test_dimacs_col_round_trips(self):
        routing = route_netlist(contended_netlist(), congestion_penalty=0.0)
        csp = build_routing_csp(routing, 3)
        parsed = parse_col_string(csp.to_dimacs_col())
        assert parsed.num_vertices == csp.problem.graph.num_vertices
        assert sorted(parsed.edges()) == sorted(csp.problem.graph.edges())

    def test_vertex_names_follow_two_pin_nets(self):
        routing = route_netlist(contended_netlist(), congestion_penalty=0.0)
        csp = build_routing_csp(routing, 2)
        assert csp.problem.vertex_names == ["net0.0", "net1.0", "net2.0"]
