"""Tests for the island-style FPGA architecture model."""

import pytest

from repro.fpga import FPGAArchitecture, Segment


class TestSegment:
    def test_kinds(self):
        with pytest.raises(ValueError):
            Segment("x", 0, 0)

    def test_corners_horizontal(self):
        assert Segment("h", 2, 1).corners() == ((2, 1), (3, 1))

    def test_corners_vertical(self):
        assert Segment("v", 2, 1).corners() == ((2, 1), (2, 2))

    def test_hashable_and_ordered(self):
        assert Segment("h", 0, 0) == Segment("h", 0, 0)
        assert len({Segment("h", 0, 0), Segment("h", 0, 0)}) == 1
        assert Segment("h", 0, 0) < Segment("v", 0, 0)


class TestArchitecture:
    def test_validation(self):
        with pytest.raises(ValueError):
            FPGAArchitecture(0, 3)
        with pytest.raises(ValueError):
            FPGAArchitecture(3, 3, channel_width=0)

    def test_block_enumeration(self):
        arch = FPGAArchitecture(3, 2)
        assert arch.num_blocks == 6
        assert len(list(arch.blocks())) == 6

    def test_segment_count(self):
        # cols*(rows+1) horizontal + (cols+1)*rows vertical
        arch = FPGAArchitecture(3, 2)
        assert arch.num_segments == 3 * 3 + 4 * 2
        assert len(list(arch.segments())) == arch.num_segments

    def test_contains_segment(self):
        arch = FPGAArchitecture(3, 2)
        assert arch.contains_segment(Segment("h", 2, 2))
        assert not arch.contains_segment(Segment("h", 3, 0))
        assert arch.contains_segment(Segment("v", 3, 1))
        assert not arch.contains_segment(Segment("v", 0, 2))

    def test_block_segments_are_four_adjacent_channels(self):
        arch = FPGAArchitecture(3, 3)
        segments = arch.block_segments(1, 1)
        assert segments == [Segment("h", 1, 1), Segment("h", 1, 2),
                            Segment("v", 1, 1), Segment("v", 2, 1)]
        assert all(arch.contains_segment(s) for s in segments)

    def test_block_segments_out_of_range(self):
        with pytest.raises(ValueError):
            FPGAArchitecture(2, 2).block_segments(2, 0)

    def test_neighbors_share_a_corner(self):
        arch = FPGAArchitecture(4, 4)
        segment = Segment("h", 1, 2)
        for neighbor in arch.segment_neighbors(segment):
            shared = set(segment.corners()) & set(neighbor.corners())
            assert shared, f"{segment} and {neighbor} share no corner"

    def test_neighbors_symmetric(self):
        arch = FPGAArchitecture(3, 3)
        for segment in arch.segments():
            for neighbor in arch.segment_neighbors(segment):
                assert segment in arch.segment_neighbors(neighbor)

    def test_corner_segment_has_fewer_neighbors(self):
        arch = FPGAArchitecture(3, 3)
        corner = Segment("h", 0, 0)
        middle = Segment("h", 1, 1)
        assert len(arch.segment_neighbors(corner)) \
            < len(arch.segment_neighbors(middle))

    def test_neighbors_of_foreign_segment_rejected(self):
        with pytest.raises(ValueError):
            FPGAArchitecture(2, 2).segment_neighbors(Segment("h", 5, 5))

    def test_segment_graph_is_connected(self):
        arch = FPGAArchitecture(4, 3)
        segments = list(arch.segments())
        seen = {segments[0]}
        frontier = [segments[0]]
        while frontier:
            current = frontier.pop()
            for neighbor in arch.segment_neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert len(seen) == arch.num_segments

    def test_manhattan_distance(self):
        arch = FPGAArchitecture(5, 5)
        assert arch.manhattan_distance((0, 0), (3, 4)) == 7
