"""Unit tests for models and solve results."""

import pytest

from repro.sat import CNF, Model, SolveResult


class TestModel:
    def test_value_lookup(self):
        model = Model([True, False, True])
        assert model.num_vars == 3
        assert model.value(1) is True
        assert model.value(2) is False
        assert model[3] is True

    def test_out_of_range(self):
        model = Model([True])
        with pytest.raises(ValueError):
            model.value(0)
        with pytest.raises(ValueError):
            model.value(2)

    def test_from_true_vars(self):
        model = Model.from_true_vars([2], num_vars=3)
        assert model.true_vars() == [2]
        assert model.as_dict() == {1: False, 2: True, 3: False}

    def test_from_true_vars_out_of_range(self):
        with pytest.raises(ValueError):
            Model.from_true_vars([4], num_vars=3)

    def test_satisfies_literal(self):
        model = Model([True, False])
        assert model.satisfies_literal(1)
        assert not model.satisfies_literal(-1)
        assert model.satisfies_literal(-2)

    def test_satisfies_clause(self):
        model = Model([True, False])
        assert model.satisfies_clause([-1, -2])
        assert not model.satisfies_clause([-1, 2])
        assert not model.satisfies_clause([])

    def test_satisfies_cnf(self):
        model = Model([True, False])
        assert model.satisfies(CNF([[1], [-2], [1, 2]]))
        assert not model.satisfies(CNF([[2]]))

    def test_equality_and_hash(self):
        assert Model([True]) == Model([True])
        assert Model([True]) != Model([False])
        assert hash(Model([True])) == hash(Model([True]))


class TestSolveResult:
    def test_sat_requires_model(self):
        with pytest.raises(ValueError):
            SolveResult(True)

    def test_unsat_rejects_model(self):
        with pytest.raises(ValueError):
            SolveResult(False, Model([True]))

    def test_truthiness(self):
        assert SolveResult(True, Model([True]))
        assert not SolveResult(False)

    def test_stats_copied(self):
        stats = {"conflicts": 3}
        result = SolveResult(False, stats=stats)
        stats["conflicts"] = 9
        assert result.stats["conflicts"] == 3
