"""Shared fixtures for the test suite.

The instance builders and hypothesis strategies live in
:mod:`tests.strategies`; they are re-exported here so existing
``from .conftest import ...`` imports keep working.
"""

from __future__ import annotations

import pytest

from repro.coloring import Graph

from .strategies import (make_random_cnf, make_random_graph, small_cnfs,
                         small_graphs)

__all__ = ["make_random_cnf", "make_random_graph", "small_cnfs",
           "small_graphs", "triangle", "square", "pentagon"]


@pytest.fixture
def triangle() -> Graph:
    """K3 — chromatic number 3."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def square() -> Graph:
    """C4 — bipartite, chromatic number 2."""
    return Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


@pytest.fixture
def pentagon() -> Graph:
    """C5 — odd cycle, chromatic number 3, clique number 2."""
    return Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
