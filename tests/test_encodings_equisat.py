"""The central correctness property of the whole encoding layer:

for every registered encoding — the paper's 15, the seqdirect
extensions, and the modern at-most-one / partial-order families — with
or without the ``b1``/``s1`` symmetry-breaking clauses, the generated
CNF is satisfiable **iff** the coloring problem is solvable, and every
decoded model is a proper coloring.  The oracle is brute-force
backtracking.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import (ColoringProblem, Graph, complete_graph,
                            cycle_graph, is_colorable)
from repro.core.encodings import REGISTRY_ENCODINGS, get_encoding
from repro.core.symmetry import apply_symmetry
from repro.sat import solve
from .strategies import make_random_graph, small_graphs

#: The paper's two symmetry-breaking heuristics (§4).
SYMMETRY_HEURISTICS = ("b1", "s1")


def check_encoding(graph, num_colors, name, symmetry="none"):
    problem = ColoringProblem(graph, num_colors)
    encoded = get_encoding(name).encode(problem)
    if symmetry != "none":
        apply_symmetry(encoded, symmetry)
    result = solve(encoded.cnf)
    expected = is_colorable(graph, num_colors)
    assert result.is_sat == expected, (
        f"{name}+{symmetry}: SAT={result.is_sat} but "
        f"colorable={expected} (n={graph.num_vertices}, K={num_colors})")
    if result.is_sat:
        coloring = encoded.decode(result.model)
        assert problem.is_valid_coloring(coloring), (
            f"{name}+{symmetry}: decoded coloring invalid")


@pytest.mark.parametrize("name", REGISTRY_ENCODINGS)
class TestCraftedGraphs:
    def test_triangle_2_colors_unsat(self, name):
        check_encoding(complete_graph(3), 2, name)

    def test_triangle_3_colors_sat(self, name):
        check_encoding(complete_graph(3), 3, name)

    def test_k5_boundary(self, name):
        check_encoding(complete_graph(5), 4, name)
        check_encoding(complete_graph(5), 5, name)

    def test_odd_cycle_needs_three(self, name):
        check_encoding(cycle_graph(7), 2, name)
        check_encoding(cycle_graph(7), 3, name)

    def test_even_cycle_two_colors(self, name):
        check_encoding(cycle_graph(6), 2, name)

    def test_edgeless_one_color(self, name):
        check_encoding(Graph(4), 1, name)

    def test_single_edge_one_color_unsat(self, name):
        check_encoding(Graph(2, [(0, 1)]), 1, name)

    def test_single_vertex(self, name):
        check_encoding(Graph(1), 1, name)
        check_encoding(Graph(1), 3, name)

    def test_colors_exceed_vertices(self, name):
        check_encoding(complete_graph(3), 7, name)

    def test_disconnected_components(self, name):
        graph = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4)])
        check_encoding(graph, 3, name)


@pytest.mark.parametrize("name", REGISTRY_ENCODINGS)
@pytest.mark.parametrize("seed", range(6))
def test_random_graphs_all_color_counts(name, seed):
    graph = make_random_graph(7, 0.5, seed=seed)
    for num_colors in range(1, 6):
        check_encoding(graph, num_colors, name)


@pytest.mark.parametrize("symmetry", SYMMETRY_HEURISTICS)
@pytest.mark.parametrize("name", REGISTRY_ENCODINGS)
@pytest.mark.parametrize("seed", range(4))
def test_full_registry_with_symmetry(name, symmetry, seed):
    """Every registry encoding x every symmetry heuristic, pinned seeds.

    Symmetry breaking removes solutions but never changes
    satisfiability — run the whole equisatisfiability check with the
    b1/s1 clauses appended, at K below, at, and above the chromatic
    boundary of a pinned random graph.
    """
    graph = make_random_graph(6, 0.5, seed=seed + 100)
    for num_colors in range(1, 5):
        check_encoding(graph, num_colors, name, symmetry=symmetry)


@pytest.mark.parametrize("symmetry", SYMMETRY_HEURISTICS)
@pytest.mark.parametrize("name", REGISTRY_ENCODINGS)
def test_symmetry_on_crafted_boundaries(name, symmetry):
    """Cliques and odd cycles at the exact K boundary, under symmetry."""
    check_encoding(complete_graph(4), 3, name, symmetry=symmetry)
    check_encoding(complete_graph(4), 4, name, symmetry=symmetry)
    check_encoding(cycle_graph(5), 2, name, symmetry=symmetry)
    check_encoding(cycle_graph(5), 3, name, symmetry=symmetry)


@settings(max_examples=25, deadline=None)
@given(graph=small_graphs(max_vertices=7),
       num_colors=st.integers(min_value=1, max_value=5),
       name=st.sampled_from(REGISTRY_ENCODINGS),
       symmetry=st.sampled_from(("none",) + SYMMETRY_HEURISTICS))
def test_equisatisfiability_property(graph, num_colors, name, symmetry):
    check_encoding(graph, num_colors, name, symmetry=symmetry)
