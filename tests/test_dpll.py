"""DPLL baseline solver tests."""

import pytest
from hypothesis import given, settings

from repro.sat import CNF, solve_dpll, solve_by_enumeration
from .strategies import make_random_cnf, small_cnfs


class TestDPLL:
    def test_empty_formula(self):
        assert solve_dpll(CNF()).is_sat

    def test_empty_clause(self):
        assert not solve_dpll(CNF([[]]))

    def test_unit_chain(self):
        result = solve_dpll(CNF([[1], [-1, 2], [-2, 3]]))
        assert result.is_sat
        assert result.model.value(3) is True

    def test_unsat_core(self):
        assert not solve_dpll(CNF([[1, 2], [1, -2], [-1, 2], [-1, -2]]))

    def test_model_extends_to_all_vars(self):
        cnf = CNF([[2]], num_vars=4)
        result = solve_dpll(cnf)
        assert result.model.num_vars == 4
        assert result.model.satisfies(cnf)

    def test_decision_budget(self):
        from .test_cdcl import pigeonhole
        with pytest.raises(RuntimeError):
            solve_dpll(pigeonhole(6), max_decisions=2)

    @pytest.mark.parametrize("seed", range(25))
    def test_matches_enumeration(self, seed):
        cnf = make_random_cnf(num_vars=8, num_clauses=25, seed=seed + 1000)
        expected = solve_by_enumeration(cnf).is_sat
        result = solve_dpll(cnf)
        assert result.is_sat == expected
        if expected:
            assert result.model.satisfies(cnf)

    @settings(max_examples=40, deadline=None)
    @given(small_cnfs(max_vars=6, max_clauses=15))
    def test_property_matches_enumeration(self, cnf):
        assert (solve_dpll(cnf).is_sat
                == solve_by_enumeration(cnf).is_sat)


class TestEnumeration:
    def test_counts_models(self):
        from repro.sat.solver import count_models
        # x1 ∨ x2 has 3 models over 2 vars.
        assert count_models(CNF([[1, 2]])) == 3

    def test_all_models_satisfy(self):
        from repro.sat.solver import all_models
        cnf = CNF([[1, -2], [2, 3]])
        models = all_models(cnf)
        assert models
        assert all(m.satisfies(cnf) for m in models)

    def test_refuses_large_formulas(self):
        from repro.sat.solver import enumerate_models
        with pytest.raises(ValueError):
            list(enumerate_models(CNF(num_vars=30)))

    def test_unsat_enumeration(self):
        from repro.sat.solver import solve_by_enumeration
        assert not solve_by_enumeration(CNF([[1], [-1]]))
