"""Unit tests for the POP / POP-H partial-ordering schemes.

The load-bearing property is *structural exactly-one*: like the ITE
trees, the ordering (and, for POP-H, channelling) clauses make every
satisfying local assignment denote exactly one domain value, with no
at-least-one / at-most-one clauses.  Checked by exhaustive enumeration
of the per-vertex block, plus pinned variable/clause counts and the
hierarchy composition ``pop-2+muldirect``.
"""

import itertools

import pytest

from repro.core.encodings import (POP, POP_H, get_encoding, parse_encoding)
from repro.core.patterns import pattern_holds


def block_models(scheme, n):
    """All local assignments satisfying the scheme's structural clauses."""
    num_vars = scheme.num_vars(n)
    clauses = scheme.structural_clauses(n)
    models = []
    for bits in itertools.product((False, True), repeat=num_vars):
        ok = all(any(bits[lit - 1] if lit > 0 else not bits[-lit - 1]
                     for lit in clause)
                 for clause in clauses)
        if ok:
            models.append(bits)
    return models


def decoded_values(scheme, n):
    """Multiset of values the scheme's models decode to (first match)."""
    values = []
    for bits in block_models(scheme, n):
        held = [value for value, pattern in enumerate(scheme.patterns(n))
                if pattern_holds(pattern, bits)]
        assert len(held) == 1, (
            f"{scheme.name}: model {bits} matches {len(held)} patterns")
        values.append(held[0])
    return values


@pytest.mark.parametrize("n", range(1, 8))
class TestPartialOrderScheme:
    def test_threshold_variable_count(self, n):
        assert POP.num_vars(n) == n - 1
        POP.check(n)

    def test_ordering_clauses(self, n):
        assert POP.structural_clauses(n) == [(-(i + 1), i)
                                             for i in range(1, n - 1)]

    def test_models_are_exactly_the_ladder_steps(self, n):
        """Each of the n downward-closed threshold vectors is one model,
        and each decodes to a distinct value — structural exactly-one."""
        assert sorted(decoded_values(POP, n)) == list(range(n))

    def test_step_patterns_are_short(self, n):
        for pattern in POP.patterns(n):
            assert len(pattern) <= 2


@pytest.mark.parametrize("n", range(1, 7))
class TestPartialOrderHybridScheme:
    def test_variable_count(self, n):
        assert POP_H.num_vars(n) == 2 * n - 1
        POP_H.check(n)

    def test_patterns_are_unit_selectors(self, n):
        assert POP_H.patterns(n) == [(value + 1,) for value in range(n)]

    def test_clause_count(self, n):
        expected = 1 if n == 1 else 4 * n - 4
        assert len(POP_H.structural_clauses(n)) == expected

    def test_channelling_forces_exactly_one_selector(self, n):
        """Over selectors *and* thresholds the block has exactly n
        models, one per value, each with a single selector true."""
        values = decoded_values(POP_H, n)
        assert sorted(values) == list(range(n))
        for bits in block_models(POP_H, n):
            assert sum(bits[:n]) == 1


class TestHierarchyComposition:
    def test_pop_subdomain_fanout(self):
        # m thresholds distinguish m+1 ordered ranges.
        assert POP.num_subdomains(2) == 3
        assert POP.num_subdomains(1) == 2

    def test_pop_upper_level_variable_budget(self):
        # pop-2 on top of K=7: 3 subdomains of sizes 3,2,2; the top
        # spends POP.num_vars(3)=2 and the bottom muldirect ⌈7/3⌉=3.
        encoding = get_encoding("pop-2+muldirect")
        assert encoding.vars_per_vertex(7) == 5

    def test_pop_h_rejected_as_upper_level(self):
        encoding = parse_encoding("pop-h-2+direct")
        with pytest.raises(NotImplementedError):
            encoding.vertex_encoding(6)

    def test_cardinality_schemes_rejected_as_upper_level(self):
        for name in ("cmddirect-2+direct", "seqdirect-2+muldirect"):
            with pytest.raises(NotImplementedError):
                parse_encoding(name).vertex_encoding(6)


class TestNameParsing:
    def test_pop_h_parses_before_pop(self):
        assert parse_encoding("pop-h").levels[0].scheme is POP_H
        assert parse_encoding("pop").levels[0].scheme is POP

    def test_pop_with_count_is_a_pop_level(self):
        level = parse_encoding("pop-2+muldirect").levels[0]
        assert level.scheme is POP
        assert level.num_vars == 2
