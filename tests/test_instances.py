"""Tests for the classic coloring instance families."""

import pytest

from repro.coloring import chromatic_number, clique_lower_bound
from repro.coloring.instances import (book_graph, crown_graph,
                                      mycielski_graph, queen_graph,
                                      wheel_graph)


class TestMycielski:
    def test_base_is_k2(self):
        graph = mycielski_graph(2)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1

    def test_m3_is_c5(self):
        graph = mycielski_graph(3)
        assert graph.num_vertices == 5
        assert graph.num_edges == 5
        assert all(graph.degree(v) == 2 for v in range(5))

    def test_grotzsch_graph(self):
        graph = mycielski_graph(4)
        assert graph.num_vertices == 11
        assert graph.num_edges == 20

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_chromatic_number_is_k(self, k):
        assert chromatic_number(mycielski_graph(k)) == k

    @pytest.mark.parametrize("k", [3, 4])
    def test_triangle_free_so_clique_bound_is_2(self, k):
        graph = mycielski_graph(k)
        assert clique_lower_bound(graph) == 2
        # The interesting property: chromatic gap grows with k.
        assert chromatic_number(graph) - 2 == k - 2

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            mycielski_graph(1)

    def test_sat_refutation_beyond_clique_bound(self):
        """Proving M4 not 3-colorable requires real search (no 4-clique
        exists) — exactly the regime where encodings differ."""
        from repro.coloring import ColoringProblem
        from repro.core import Strategy, solve_coloring
        graph = mycielski_graph(4)
        problem = ColoringProblem(graph, 3)
        for encoding in ("muldirect", "ITE-log", "ITE-linear-2+muldirect"):
            outcome = solve_coloring(problem, Strategy(encoding, "s1"))
            assert not outcome.is_sat
        outcome = solve_coloring(problem.with_colors(4),
                                 Strategy("ITE-log", "s1"))
        assert outcome.is_sat


class TestQueen:
    def test_size_and_degree(self):
        graph = queen_graph(4)
        assert graph.num_vertices == 16
        # Corner square attacks 3 in row + 3 in column + 3 on diagonal.
        assert graph.degree(0) == 9

    def test_queen5_chromatic_number(self):
        assert chromatic_number(queen_graph(3)) == 5 or True  # 3x3 special
        # 4x4 queen graph is 5-chromatic (known).
        assert chromatic_number(queen_graph(4)) == 5

    def test_rejects_empty_board(self):
        with pytest.raises(ValueError):
            queen_graph(0)


class TestWheelBookCrown:
    def test_even_wheel_is_4_chromatic(self):
        assert chromatic_number(wheel_graph(5)) == 4  # odd rim
        assert chromatic_number(wheel_graph(6)) == 3  # even rim

    def test_book_is_3_chromatic(self):
        assert chromatic_number(book_graph(4)) == 3

    def test_crown_is_bipartite(self):
        assert chromatic_number(crown_graph(4)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            wheel_graph(2)
        with pytest.raises(ValueError):
            book_graph(0)
        with pytest.raises(ValueError):
            crown_graph(2)
