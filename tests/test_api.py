"""The canonical request/response contract (repro.api).

Covers the cache-key semantics the serve cache relies on (edge-order
invariance, relabeling sensitivity, limits sensitivity), the wire
codecs, and the dispatch routing (pipeline / portfolio / batch).
"""

import json

import pytest

from repro import api
from repro.api import (SolveRequest, SolveResponse, limits_from_wire,
                       limits_to_wire, strategy_from_wire, strategy_to_wire)
from repro.coloring import ColoringProblem
from repro.coloring.problem import Graph
from repro.core.strategy import BEST_SINGLE_STRATEGY, PORTFOLIO_2, Strategy
from repro.sat.status import SolveLimits, SolveStatus


def triangle(order=((0, 1), (1, 2), (0, 2))):
    graph = Graph(3)
    for u, v in order:
        graph.add_edge(u, v)
    return graph


def path4_a():
    """P4 as 0-1-2-3."""
    graph = Graph(4)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    return graph


def path4_b():
    """The same P4 with relabeled interior vertices (0-2-1-3):
    isomorphic, but a *different* labeled graph."""
    graph = Graph(4)
    graph.add_edge(0, 2)
    graph.add_edge(2, 1)
    graph.add_edge(1, 3)
    return graph


class TestCacheKey:
    def test_edge_order_invariance(self):
        a = SolveRequest(graph=triangle(), colors=3)
        b = SolveRequest(graph=triangle(order=((0, 2), (1, 2), (0, 1))),
                         colors=3)
        assert a.cache_key() == b.cache_key()
        assert a.canonical_bytes() == b.canonical_bytes()

    def test_vertex_relabeling_changes_key(self):
        a = SolveRequest(graph=path4_a(), colors=2)
        b = SolveRequest(graph=path4_b(), colors=2)
        assert a.cache_key() != b.cache_key()

    def test_colors_change_key(self):
        graph = triangle()
        assert (SolveRequest(graph=graph, colors=3).cache_key()
                != SolveRequest(graph=graph, colors=4).cache_key())

    def test_limits_change_key(self):
        graph = triangle()
        free = SolveRequest(graph=graph, colors=3)
        bounded = SolveRequest(graph=graph, colors=3,
                               limits=SolveLimits(conflict_budget=100))
        tighter = SolveRequest(graph=graph, colors=3,
                               limits=SolveLimits(conflict_budget=50))
        assert free.cache_key() != bounded.cache_key()
        assert bounded.cache_key() != tighter.cache_key()

    def test_none_and_unlimited_limits_hash_equal(self):
        graph = triangle()
        assert (SolveRequest(graph=graph, colors=3).cache_key()
                == SolveRequest(graph=graph, colors=3,
                                limits=SolveLimits()).cache_key())

    def test_strategies_change_key(self):
        graph = triangle()
        one = SolveRequest(graph=graph, colors=3)
        other = SolveRequest(graph=graph, colors=3,
                             strategies=(Strategy("muldirect"),))
        both = SolveRequest(graph=graph, colors=3, strategies=PORTFOLIO_2)
        assert len({one.cache_key(), other.cache_key(),
                    both.cache_key()}) == 3

    def test_execution_opts_do_not_change_key(self):
        graph = triangle()
        base = SolveRequest(graph=graph, colors=3)
        dressed = SolveRequest(graph=graph, colors=3, audit=True,
                               keep_model=True, proof_log=True,
                               client="alice", tag="run-7")
        assert base.cache_key() == dressed.cache_key()


class TestValidation:
    def test_rejects_non_graph(self):
        with pytest.raises(TypeError):
            SolveRequest(graph="not a graph", colors=3)

    def test_rejects_bad_colors(self):
        with pytest.raises(ValueError):
            SolveRequest(graph=triangle(), colors=0)

    def test_rejects_empty_strategies(self):
        with pytest.raises(ValueError):
            SolveRequest(graph=triangle(), colors=3, strategies=())

    def test_normalises_strategy_list(self):
        request = SolveRequest(graph=triangle(), colors=3,
                               strategies=[BEST_SINGLE_STRATEGY])
        assert isinstance(request.strategies, tuple)

    def test_single_constructor(self):
        problem = ColoringProblem(triangle(), 3)
        request = SolveRequest.single(problem, tag="t")
        assert request.colors == 3 and request.tag == "t"
        rebuilt = request.problem()
        assert rebuilt.num_colors == 3
        assert rebuilt.graph.num_edges == 3


class TestWire:
    def test_request_round_trip(self):
        request = SolveRequest(
            graph=path4_a(), colors=2, strategies=PORTFOLIO_2,
            limits=SolveLimits(conflict_budget=9, wall_clock_limit=1.5),
            audit=True, keep_model=True, client="bob", tag="x")
        wire = json.loads(json.dumps(request.to_wire()))
        back = SolveRequest.from_wire(wire)
        assert back.cache_key() == request.cache_key()
        assert back.strategies == request.strategies
        assert back.limits == request.limits
        assert back.audit and back.keep_model
        assert back.client == "bob" and back.tag == "x"

    def test_request_wire_rejects_unknown_format(self):
        wire = SolveRequest(graph=triangle(), colors=3).to_wire()
        wire["format"] = "bogus/9"
        with pytest.raises(ValueError):
            SolveRequest.from_wire(wire)

    def test_strategy_codec_round_trip(self):
        strategy = Strategy("muldirect", "b1", solver="minisat_like",
                            seed=3, engine="packed")
        assert strategy_from_wire(strategy_to_wire(strategy)) == strategy

    def test_limits_codec_round_trip(self):
        limits = SolveLimits(conflict_budget=5, propagation_budget=7,
                             wall_clock_limit=0.25)
        assert limits_from_wire(limits_to_wire(limits)) == limits
        assert limits_to_wire(None) is None
        assert limits_from_wire(None) is None

    def test_response_round_trip_restores_int_coloring_keys(self):
        response = api.solve(SolveRequest(graph=triangle(), colors=3))
        wire = json.loads(json.dumps(response.to_wire()))
        back = SolveResponse.from_wire(wire)
        assert back.status is SolveStatus.SAT
        assert back.coloring == response.coloring
        assert all(isinstance(v, int) for v in back.coloring)
        assert back.winner == response.winner
        assert back.timings and "solve_time" in back.timings


class TestDispatch:
    def test_single_strategy_sat(self):
        response = api.solve(SolveRequest(graph=triangle(), colors=3))
        assert response.status is SolveStatus.SAT
        assert response.exit_code == 10
        assert response.coloring and response.winner
        assert response.digest == SolveRequest(graph=triangle(),
                                               colors=3).cache_key()

    def test_single_strategy_unsat_with_audit(self):
        response = api.solve(SolveRequest(graph=triangle(), colors=2,
                                          audit=True))
        assert response.status is SolveStatus.UNSAT
        assert response.audit == "PASS"
        assert response.coloring is None
        assert response.exit_code == 20

    def test_budget_exhaustion_is_a_status(self):
        response = api.solve(SolveRequest(
            graph=triangle(), colors=3,
            limits=SolveLimits(propagation_budget=1)))
        assert response.status in (SolveStatus.BUDGET_EXHAUSTED,
                                   SolveStatus.SAT)
        assert response.exit_code in (0, 10)

    def test_portfolio_dispatch(self):
        response = api.solve(SolveRequest(graph=triangle(), colors=3,
                                          strategies=PORTFOLIO_2))
        assert response.status is SolveStatus.SAT
        assert response.winner in {s.label for s in PORTFOLIO_2}

    def test_batch_keeps_order_and_duplicates(self):
        requests = [
            SolveRequest(graph=triangle(), colors=3, tag="sat"),
            SolveRequest(graph=triangle(), colors=2, tag="unsat"),
            SolveRequest(graph=triangle(), colors=3, tag="dup"),
        ]
        responses = api.solve_batch(requests, max_workers=2)
        assert [r.status for r in responses] == [
            SolveStatus.SAT, SolveStatus.UNSAT, SolveStatus.SAT]
        assert [r.tag for r in responses] == ["sat", "unsat", "dup"]

    def test_batch_rejects_heterogeneous_limits(self):
        requests = [
            SolveRequest(graph=triangle(), colors=3),
            SolveRequest(graph=triangle(), colors=2,
                         limits=SolveLimits(conflict_budget=5)),
        ]
        with pytest.raises(ValueError, match="uniform"):
            api.solve_batch(requests)
