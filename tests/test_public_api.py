"""Sanity checks on the public API surface."""

import importlib

import pytest

import repro

PACKAGES = ["repro", "repro.sat", "repro.sat.solver", "repro.coloring",
            "repro.core", "repro.core.encodings", "repro.core.symmetry",
            "repro.fpga", "repro.bench", "repro.obs", "repro.api",
            "repro.serve"]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    def test_version(self):
        assert repro.__version__ == "1.9.0"

    def test_api_contract_exported_at_top_level(self):
        from repro import SolveRequest, SolveResponse, api
        assert callable(api.solve) and callable(api.solve_batch)
        assert SolveRequest is api.SolveRequest
        assert SolveResponse is api.SolveResponse

    def test_status_api_exported_at_top_level(self):
        from repro import (BudgetExceeded, CancelToken, SolveLimits,
                           SolveReport, SolveStatus)
        assert SolveStatus.SAT.exit_code == 10
        assert SolveStatus.UNSAT.exit_code == 20
        assert not SolveStatus.TIMEOUT.decided
        assert SolveLimits().unlimited
        assert not CancelToken().cancelled
        assert SolveReport is not None and BudgetExceeded is not None

    def test_batch_runner_exported_at_top_level(self):
        from repro import BatchJob, BatchResult, run_batch
        assert callable(run_batch)
        assert BatchJob is not None and BatchResult is not None

    def test_docstrings_on_public_callables(self):
        """Every public item of the top-level API is documented."""
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            item = getattr(repro, name)
            if callable(item) or isinstance(item, type):
                assert item.__doc__, f"repro.{name} lacks a docstring"


class TestQuickstartContract:
    """The README's quickstart snippet, kept honest by a test."""

    def test_quickstart_flow(self):
        from repro import (Strategy, detailed_route, load_routing,
                           minimum_channel_width)

        strategy = Strategy("ITE-linear-2+muldirect", "s1")
        routing = load_routing("alu2", scale=0.6)
        w_min = minimum_channel_width(routing, strategy)
        result = detailed_route(routing, w_min, strategy)
        assert result.routable
        proof = detailed_route(routing, w_min - 1, strategy)
        assert not proof.routable

    def test_paper_constant_names(self):
        from repro import (ALL_ENCODINGS, NEW_ENCODINGS, PORTFOLIO_3,
                           PREVIOUS_ENCODINGS, TABLE2_ENCODINGS)
        assert len(ALL_ENCODINGS) == 15
        assert len(NEW_ENCODINGS) == 12
        assert PREVIOUS_ENCODINGS == ["log", "muldirect"]
        assert len(TABLE2_ENCODINGS) == 7
        assert len(PORTFOLIO_3) == 3

    def test_registry_constant_names(self):
        from repro import ALL_ENCODINGS, MODERN_ENCODINGS, REGISTRY_ENCODINGS
        assert len(MODERN_ENCODINGS) == 7
        assert len(REGISTRY_ENCODINGS) == 25
        assert set(ALL_ENCODINGS) <= set(REGISTRY_ENCODINGS)
        assert set(MODERN_ENCODINGS) <= set(REGISTRY_ENCODINGS)
        assert "pop" in REGISTRY_ENCODINGS and "pop-h" in REGISTRY_ENCODINGS


class TestCompatibilityShims:
    """Pre-1.1 call sites keep working, but warn since 1.6 (the shims
    are deprecated; docs/api.md has the migration table)."""

    def test_solve_result_accepts_bool_with_warning(self):
        from repro.sat import CNF, SolveStatus
        from repro.sat.model import Model, SolveResult
        cnf = CNF(num_vars=1)
        with pytest.warns(DeprecationWarning, match="SolveResult"):
            sat = SolveResult(True, model=Model([True]))
        assert sat.is_sat and sat.status is SolveStatus.SAT
        with pytest.warns(DeprecationWarning):
            unsat = SolveResult(False)
        assert not unsat.is_sat and unsat.status is SolveStatus.UNSAT
        assert cnf.num_vars == 1

    def test_satisfiable_properties_warn(self):
        from repro import ColoringProblem, Strategy, solve_coloring
        from repro.coloring import cycle_graph
        from repro.sat import SolveStatus
        outcome = solve_coloring(ColoringProblem(cycle_graph(5), 3),
                                 Strategy("muldirect", "s1"))
        assert outcome.status is SolveStatus.SAT
        assert outcome.is_sat is True  # the non-deprecated shorthand
        with pytest.warns(DeprecationWarning, match="is_sat"):
            assert outcome.satisfiable is True

    def test_from_bool_warns(self):
        from repro.sat import SolveStatus
        with pytest.warns(DeprecationWarning, match="from_bool"):
            assert SolveStatus.from_bool(True) is SolveStatus.SAT

    def test_legacy_budget_exceeded_is_same_class(self):
        # legacy.py used to define its own duplicate exception; both
        # import paths must now name one class.
        from repro.sat.solver.cdcl import BudgetExceeded as arena_exc
        from repro.sat.solver.legacy import BudgetExceeded as legacy_exc
        import repro
        assert arena_exc is legacy_exc is repro.BudgetExceeded

    def test_old_import_paths_still_resolve(self):
        # Names reachable both from their home modules and the curated
        # top-level __all__.
        from repro.core.portfolio import PortfolioResult as deep
        from repro import PortfolioResult as top
        assert deep is top
        from repro.sat.status import SolveStatus as deep_status
        from repro.sat import SolveStatus as mid_status
        from repro import SolveStatus as top_status
        assert deep_status is mid_status is top_status
