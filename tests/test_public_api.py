"""Sanity checks on the public API surface."""

import importlib

import pytest

import repro

PACKAGES = ["repro", "repro.sat", "repro.sat.solver", "repro.coloring",
            "repro.core", "repro.core.encodings", "repro.core.symmetry",
            "repro.fpga", "repro.bench"]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_docstrings_on_public_callables(self):
        """Every public item of the top-level API is documented."""
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            item = getattr(repro, name)
            if callable(item) or isinstance(item, type):
                assert item.__doc__, f"repro.{name} lacks a docstring"


class TestQuickstartContract:
    """The README's quickstart snippet, kept honest by a test."""

    def test_quickstart_flow(self):
        from repro import (Strategy, detailed_route, load_routing,
                           minimum_channel_width)

        strategy = Strategy("ITE-linear-2+muldirect", "s1")
        routing = load_routing("alu2", scale=0.6)
        w_min = minimum_channel_width(routing, strategy)
        result = detailed_route(routing, w_min, strategy)
        assert result.routable
        proof = detailed_route(routing, w_min - 1, strategy)
        assert not proof.routable

    def test_paper_constant_names(self):
        from repro import (ALL_ENCODINGS, NEW_ENCODINGS, PORTFOLIO_3,
                           PREVIOUS_ENCODINGS, TABLE2_ENCODINGS)
        assert len(ALL_ENCODINGS) == 15
        assert len(NEW_ENCODINGS) == 12
        assert PREVIOUS_ENCODINGS == ["log", "muldirect"]
        assert len(TABLE2_ENCODINGS) == 7
        assert len(PORTFOLIO_3) == 3
