"""Tests for portfolio execution and the virtual-portfolio model."""

import os
import time

import pytest

from repro.coloring import ColoringProblem, complete_graph, cycle_graph
from repro.core import (PORTFOLIO_2, PORTFOLIO_3, Strategy,
                        portfolio_speedup, run_portfolio,
                        virtual_portfolio_time)
from repro.core import portfolio as portfolio_module
from repro.core.pipeline import solve_coloring
from repro.sat import SolveLimits, SolveStatus


class TestPaperPortfolios:
    def test_members(self):
        assert len(PORTFOLIO_2) == 2
        assert len(PORTFOLIO_3) == 3
        assert PORTFOLIO_2[0].label == "ITE-linear-2+muldirect/s1"
        assert PORTFOLIO_3[2].label == "ITE-linear-2+direct/s1#2"
        assert all(s.symmetry == "s1" for s in PORTFOLIO_3)
        # Members carry distinct seeds (search-trajectory diversity).
        assert len({s.seed for s in PORTFOLIO_3}) == 3

    def test_labels_unique_across_solver_and_seed(self):
        a = Strategy("muldirect", "s1", solver="siege_like")
        b = Strategy("muldirect", "s1", solver="minisat_like")
        c = Strategy("muldirect", "s1", seed=3)
        assert len({a.label, b.label, c.label}) == 3


class TestRunPortfolio:
    def test_sat_instance(self):
        problem = ColoringProblem(cycle_graph(9), 3)
        result = run_portfolio(problem, list(PORTFOLIO_3))
        assert result.status is SolveStatus.SAT
        assert result.decided
        assert result.outcome.is_sat
        assert result.num_strategies == 3
        assert result.winner in PORTFOLIO_3
        assert problem.is_valid_coloring(result.outcome.coloring)
        assert result.report.status is SolveStatus.SAT
        assert result.winner.label in result.report.detail

    def test_unsat_instance(self):
        problem = ColoringProblem(complete_graph(5), 4)
        result = run_portfolio(problem, list(PORTFOLIO_2))
        assert result.status is SolveStatus.UNSAT
        assert not result.outcome.is_sat

    def test_single_strategy_portfolio(self):
        problem = ColoringProblem(cycle_graph(5), 3)
        strategy = Strategy("muldirect", "s1")
        result = run_portfolio(problem, [strategy])
        assert result.winner == strategy
        assert result.member_status[strategy.label] is SolveStatus.SAT

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            run_portfolio(ColoringProblem(cycle_graph(5), 3), [])


@pytest.mark.slow
class TestPortfolioDeadlines:
    """Bounded races: every member stopping is a representable outcome."""

    # K11 with 10 colors and *no* symmetry breaking is pigeonhole-hard:
    # far beyond these deadlines for every member, yet small to encode.
    def setup_method(self):
        self.problem = ColoringProblem(complete_graph(11), 10)
        self.members = [Strategy("muldirect", "none"),
                        Strategy("muldirect", "none", seed=2)]

    def test_all_members_time_out(self):
        # No member decides within the deadline; the race must come
        # back with TIMEOUT for everyone, not raise or hang.
        start = time.perf_counter()
        result = run_portfolio(self.problem, self.members, timeout=0.4)
        elapsed = time.perf_counter() - start
        assert result.status is SolveStatus.TIMEOUT
        assert result.winner is None and result.outcome is None
        assert not result.decided
        assert len(result.member_status) == 2
        assert all(s is SolveStatus.TIMEOUT
                   for s in result.member_status.values())
        assert elapsed < 10.0  # cooperative wind-down, no hard kill path

    def test_all_members_exhaust_conflict_budget(self):
        limits = SolveLimits(conflict_budget=10)
        result = run_portfolio(self.problem, self.members, limits=limits)
        assert result.status is SolveStatus.BUDGET_EXHAUSTED
        assert result.winner is None
        assert all(s is SolveStatus.BUDGET_EXHAUSTED
                   for s in result.member_status.values())

    def test_winner_inside_deadline(self):
        problem = ColoringProblem(cycle_graph(9), 3)
        result = run_portfolio(problem, list(PORTFOLIO_2), timeout=60.0)
        assert result.status is SolveStatus.SAT
        assert result.winner is not None


# Seeds recognised by _sick_solve to inject worker misbehaviour.  The
# patch relies on fork-start workers inheriting the parent's (patched)
# module state, so these tests are skipped where fork is unavailable.
_RAISE_SEED = 90001
_DIE_SEED = 90002
_HANG_SEED = 90003


def _sick_solve(problem, strategy, graph_time=0.0, **kwargs):
    if strategy.seed == _RAISE_SEED:
        raise ValueError("injected failure")
    if strategy.seed == _DIE_SEED:
        os._exit(17)  # vanish without reporting, like a crash/OOM kill
    if strategy.seed == _HANG_SEED:
        time.sleep(600)  # stuck outside the solver: ignores the token
    return solve_coloring(problem, strategy, graph_time=graph_time, **kwargs)


fork_only = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="failure injection requires fork-start workers")


@fork_only
class TestSickMembers:
    """The first-to-finish race must survive failing and dying workers."""

    @pytest.fixture(autouse=True)
    def _patch_worker_solve(self, monkeypatch):
        monkeypatch.setattr(portfolio_module, "solve_coloring", _sick_solve)

    def setup_method(self):
        self.problem = ColoringProblem(cycle_graph(9), 3)
        self.healthy = Strategy("muldirect", "s1")

    def test_failing_member_does_not_win(self):
        # The failer reports (an error) long before the healthy member
        # solves; the race must keep waiting and return the real answer.
        failer = Strategy("muldirect", "s1", seed=_RAISE_SEED)
        result = run_portfolio(self.problem, [failer, self.healthy])
        assert result.winner == self.healthy
        assert result.outcome.is_sat

    def test_dead_worker_cannot_hang_the_race(self):
        dier = Strategy("muldirect", "s1", seed=_DIE_SEED)
        result = run_portfolio(self.problem, [dier, self.healthy],
                               timeout=60.0)
        assert result.winner == self.healthy
        assert result.outcome.is_sat

    def test_all_members_failing_is_error_status(self):
        failers = [Strategy("muldirect", "s1", seed=_RAISE_SEED),
                   Strategy("muldirect", "b1", seed=_RAISE_SEED)]
        result = run_portfolio(self.problem, failers)
        assert result.status is SolveStatus.ERROR
        assert result.winner is None and result.outcome is None
        assert len(result.failures) == 2
        assert all("injected failure" in reason
                   for reason in result.failures.values())

    def test_lone_dead_worker_reports_error_not_hangs(self):
        dier = Strategy("muldirect", "s1", seed=_DIE_SEED)
        start = time.perf_counter()
        result = run_portfolio(self.problem, [dier], timeout=60.0)
        # Detected by liveness polling, far inside the 60s timeout.
        assert time.perf_counter() - start < 30.0
        assert result.status is SolveStatus.ERROR
        assert "died without reporting" in result.failures[dier.label]

    def test_uncooperative_hanger_is_terminated_as_timeout(self):
        hanger = Strategy("muldirect", "s1", seed=_HANG_SEED)
        start = time.perf_counter()
        result = run_portfolio(self.problem, [hanger], timeout=0.5)
        # Cancel grace, then hard termination — well under the sleep.
        assert time.perf_counter() - start < 30.0
        assert result.status is SolveStatus.TIMEOUT
        assert result.member_status[hanger.label] is SolveStatus.TIMEOUT


class TestVirtualPortfolio:
    def setup_method(self):
        self.a = Strategy("muldirect", "s1")
        self.b = Strategy("ITE-log", "s1")
        self.times = {
            "x": {self.a: 10.0, self.b: 2.0},
            "y": {self.a: 1.0, self.b: 5.0},
        }

    def test_takes_minimum_per_instance(self):
        result = virtual_portfolio_time(self.times, [self.a, self.b])
        assert result == {"x": 2.0, "y": 1.0}

    def test_missing_measurement_rejected(self):
        with pytest.raises(ValueError):
            virtual_portfolio_time({"x": {self.a: 1.0}}, [self.a, self.b])

    def test_speedup(self):
        # reference a: total 11; portfolio total 3 -> 11/3
        speedup = portfolio_speedup(self.times, [self.a, self.b], self.a)
        assert speedup == pytest.approx(11.0 / 3.0)

    def test_portfolio_never_slower_than_member(self):
        speedup = portfolio_speedup(self.times, [self.a, self.b], self.b)
        assert speedup >= 1.0
