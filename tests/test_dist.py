"""Tests for the distributed solving subsystem (repro.dist)."""

import json
from pathlib import Path

import pytest

from repro.coloring import ColoringProblem, complete_graph, cycle_graph
from repro.core import Strategy
from repro.core.encodings.registry import get_encoding
from repro.core.symmetry.clauses import apply_symmetry
from repro.dist import (BatchJob, ClauseImportFilter, LoopbackChannel,
                        ShareConfig, cube_tree, run_cooperative, run_cubed,
                        run_jobs, run_sharded, seed_diverse_members,
                        shard_of)
from repro.dist.sharing import ClauseHub
from repro.qa.generators import conflict_instances
from repro.reliability.faults import FaultPlan
from repro.reliability.quarantine import QuarantinePolicy
from repro.sat import CDCLSolver, PackedCDCLSolver
from repro.sat.solver.config import preset
from repro.sat.status import SolveStatus

DIRECT = Strategy("direct", "s1")
FAST_QUARANTINE = QuarantinePolicy(threshold=3, base_backoff=0.05,
                                   max_backoff=0.2)

FIXTURES = json.loads(
    (Path(__file__).parent / "fixtures" / "solver_trajectories.json")
    .read_text(encoding="utf-8"))


def _conflict_suite(count=3, num_vertices=24):
    return list(conflict_instances(7, count, num_vertices=num_vertices,
                                   edge_probability=0.4, clique_size=5))


def _jobs(count=3, strategy=DIRECT):
    return [BatchJob(inst.name, inst.problem, strategy)
            for inst in _conflict_suite(count)]


# ----------------------------------------------------------------------
# Import filter
# ----------------------------------------------------------------------

class TestClauseImportFilter:
    def _filter(self, num_vars=50, **kwargs):
        return ClauseImportFilter(num_vars, ShareConfig(**kwargs))

    def test_admits_well_formed_clause(self):
        f = self._filter()
        assert f.admit(("peer", (1, -2, 3), 2)) == ((1, -2, 3), 2)
        assert f.admitted == 1 and f.rejected == 0

    def test_rejects_zero_literal(self):
        # The exact shape the corrupt_share fault produces.
        f = self._filter()
        assert f.admit(("peer", (1, 0, 3), 2)) is None
        assert f.rejected == 1

    def test_rejects_malformed_shapes(self):
        f = self._filter()
        for payload in [None, 17, "clause", (1, 2), ("peer", (), 1),
                        ("peer", (1, 2), "lbd"), ("peer", ("x", 2), 1),
                        ("peer", (1.5, 2), 1), ("peer", (1, 2), 0)]:
            assert f.admit(payload) is None, payload
        assert f.admitted == 0

    def test_rejects_out_of_range_variable(self):
        f = self._filter(num_vars=10)
        assert f.admit(("peer", (5, -11), 2)) is None
        assert f.admit(("peer", (5, -10), 2)) is not None

    def test_rejects_tautology_dedups_duplicates(self):
        f = self._filter()
        assert f.admit(("peer", (4, -4), 1)) is None
        assert f.admit(("peer", (5, 5, -6), 2)) == ((5, -6), 2)

    def test_rejects_over_length_and_over_lbd(self):
        f = self._filter(export_max_length=3, export_max_lbd=2)
        assert f.admit(("peer", (1, 2, 3, 4), 2)) is None
        assert f.admit(("peer", (1, 2, 3), 3)) is None
        # Units always pass the LBD cap.
        assert f.admit(("peer", (9,), 99)) == ((9,), 1)

    def test_dedups_across_origins(self):
        f = self._filter()
        assert f.admit(("a", (1, -2), 1)) is not None
        assert f.admit(("b", (-2, 1), 1)) is None  # same sorted key

    def test_unknown_num_vars_skips_range_check(self):
        f = ClauseImportFilter(None)
        assert f.admit(("peer", (10 ** 6, -2), 2)) is not None


# ----------------------------------------------------------------------
# Solver-side sharing hooks
# ----------------------------------------------------------------------

def _encoded_cnf(problem, strategy=DIRECT):
    encoded = get_encoding(strategy.encoding).encode(problem)
    apply_symmetry(encoded, strategy.symmetry)
    return encoded.cnf


class TestSolverSharing:
    def _unsat_problem(self):
        return ColoringProblem(complete_graph(6), 5)

    @pytest.mark.parametrize("engine_cls", [CDCLSolver, PackedCDCLSolver])
    def test_sharing_disabled_is_trajectory_neutral(self, engine_cls):
        cnf = _encoded_cnf(self._unsat_problem())
        plain = engine_cls(cnf.copy(), preset("siege_like"))
        plain_result = plain.solve()
        config = preset("siege_like")
        config.clause_channel = LoopbackChannel(num_vars=cnf.num_vars)
        shared = engine_cls(cnf.copy(), config)
        shared_result = shared.solve()
        assert plain_result.status is shared_result.status
        assert plain.stats["decisions"] == shared.stats["decisions"]
        assert plain.stats["conflicts"] == shared.stats["conflicts"]

    def test_exports_respect_caps(self):
        cnf = _encoded_cnf(self._unsat_problem())
        channel = LoopbackChannel(num_vars=cnf.num_vars,
                                  config=ShareConfig(export_max_length=4,
                                                     export_max_lbd=3))
        config = preset("siege_like")
        config.clause_channel = channel
        solver = CDCLSolver(cnf, config)
        solver.solve()
        assert solver.stats["shared_exported"] == len(channel.exported)
        for lits, lbd in channel.exported:
            assert 1 <= len(lits) <= 4
            assert all(lit != 0 for lit in lits)

    def test_corrupt_clause_rejected_never_learned(self):
        # A conflict-suite instance: enough conflicts that the solver
        # restarts, which is when imports are taken.
        inst = next(iter(conflict_instances(
            7, 1, num_vertices=48, edge_probability=0.42, clique_size=8)))
        cnf = _encoded_cnf(inst.problem)
        config = preset("siege_like")
        config.restart_base = 2  # force early restarts: imports happen
        channel = LoopbackChannel(num_vars=cnf.num_vars)
        channel.feed_raw(("peer", (3, 0, -5), 1))   # zeroed literal
        channel.feed_raw(("peer", (cnf.num_vars + 7,), 1))  # bad var
        channel.feed_raw("garbage")
        config.clause_channel = channel
        solver = CDCLSolver(cnf, config)
        result = solver.solve()
        assert result.status is SolveStatus.UNSAT
        assert channel.rejected == 3
        assert solver.stats["shared_imported"] == 0

    def test_unbudgeted_arena_trajectories_match_fixture(self):
        """The pinned pre-sharing trajectories still hold with the
        sharing hooks compiled in but no channel configured."""
        from repro.bench.throughput import random_3sat
        name, (nv, nc, seed) = "3sat-40v-160c-s0", (40, 160, 0)
        for preset_name in ("minisat_like", "siege_like"):
            solver = CDCLSolver(random_3sat(nv, nc, seed),
                                preset(preset_name))
            result = solver.solve()
            assert [bool(result.is_sat), int(solver.stats["decisions"]),
                    int(solver.stats["conflicts"])] \
                == FIXTURES["random"][name][preset_name]


# ----------------------------------------------------------------------
# Hub + cooperative portfolio
# ----------------------------------------------------------------------

class TestClauseHub:
    def test_pump_fans_out_except_origin(self):
        hub = ClauseHub(["a", "b", "c"], num_vars=20)
        a, b, c = (hub.endpoint(m) for m in "abc")
        assert a.export((1, -2), 1)
        import time
        deadline = time.time() + 2.0
        moved = 0
        while moved == 0 and time.time() < deadline:
            moved = hub.pump()  # mp queues need a moment to flush
        assert moved == 1
        time.sleep(0.05)
        assert a.take() == []
        assert b.take() == [((1, -2), 1)]
        assert c.take() == [((1, -2), 1)]
        hub.close()

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            ClauseHub(["a", "a"])


class TestCooperativePortfolio:
    def test_seed_diverse_members(self):
        members = seed_diverse_members(DIRECT, 3)
        assert len({m.seed for m in members}) == 3
        assert len({m.label for m in members}) == 3
        assert {m.encoding for m in members} == {"direct"}

    def test_legacy_engine_refused(self):
        with pytest.raises(ValueError):
            seed_diverse_members(DIRECT, 2, engines=["legacy"])

    def test_mixed_encoding_share_refused(self):
        from repro.core.portfolio import run_portfolio
        problem = ColoringProblem(cycle_graph(5), 3)
        with pytest.raises(ValueError):
            run_portfolio(problem,
                          [Strategy("direct", "s1"),
                           Strategy("muldirect", "s1")], share=True)

    def test_cooperative_unsat(self):
        problem = ColoringProblem(complete_graph(7), 6)
        result = run_cooperative(problem, DIRECT, members=2, timeout=60)
        assert result.status is SolveStatus.UNSAT

    def test_cooperative_sat_decodes(self):
        problem = ColoringProblem(cycle_graph(9), 3)
        result = run_cooperative(problem, DIRECT, members=2, timeout=60)
        assert result.status is SolveStatus.SAT
        assert problem.is_valid_coloring(result.outcome.coloring)


# ----------------------------------------------------------------------
# Cube-and-conquer
# ----------------------------------------------------------------------

class TestCubes:
    def test_cube_tree_deterministic(self):
        problem = _conflict_suite(1)[0].problem
        t1 = cube_tree(problem, "s1", min_cubes=8)
        t2 = cube_tree(problem, "s1", min_cubes=8)
        assert t1 == t2
        assert len(t1.cubes) >= 8

    def test_cube_tree_none_symmetry_applies_color_caps(self):
        problem = ColoringProblem(cycle_graph(8), 4)
        tree = cube_tree(problem, "none", min_cubes=4)
        # i-th cube vertex branches colors 0..i (Van Gelder normal form).
        for cube in tree.cubes:
            for depth, (_, color) in enumerate(cube.assignment):
                assert color <= depth

    def test_cube_tree_prunes_adjacent_equal_colors(self):
        problem = ColoringProblem(complete_graph(6), 5)
        tree = cube_tree(problem, "none", min_cubes=8)
        assert tree.pruned > 0
        for cube in tree.cubes:
            colors = {}
            for vertex, color in cube.assignment:
                colors[vertex] = color
            for u, cu in colors.items():
                for v, cv in colors.items():
                    if u != v and problem.graph.has_edge(u, v):
                        assert cu != cv

    def test_serial_cube_run_deterministic_winner(self):
        problem = ColoringProblem(cycle_graph(9), 3)
        r1 = run_cubed(problem, DIRECT, max_workers=1)
        r2 = run_cubed(problem, DIRECT, max_workers=1)
        assert r1.status is SolveStatus.SAT is r2.status
        assert r1.winner == r2.winner
        assert r1.plan == r2.plan
        assert problem.is_valid_coloring(r1.coloring)

    def test_cubed_unsat_needs_every_cube_refuted(self):
        problem = ColoringProblem(complete_graph(6), 5)
        result = run_cubed(problem, DIRECT, max_workers=1)
        assert result.status is SolveStatus.UNSAT
        assert result.cubes_closed == len(result.plan.cubes)
        assert all(s is SolveStatus.UNSAT
                   for s in result.cube_status.values())

    def test_parallel_cubed_agrees_with_serial(self):
        inst = _conflict_suite(1)[0]
        serial = run_cubed(inst.problem, DIRECT, max_workers=1)
        parallel = run_cubed(inst.problem, DIRECT, max_workers=2)
        assert serial.status is SolveStatus.UNSAT
        assert parallel.status is SolveStatus.UNSAT

    def test_parallel_sat_early_cancels_with_valid_coloring(self):
        problem = ColoringProblem(cycle_graph(11), 3)
        result = run_cubed(problem, DIRECT, max_workers=2, timeout=60)
        assert result.status is SolveStatus.SAT
        assert problem.is_valid_coloring(result.coloring)

    def test_crashed_cube_worker_loses_no_cube(self):
        inst = _conflict_suite(1)[0]
        result = run_cubed(
            inst.problem, DIRECT, max_workers=2, timeout=120,
            faults=FaultPlan.parse("seed=5; crash@dist_shard"))
        # Both workers die instantly; every cube is re-solved in the
        # parent and the verdict still lands.
        assert result.status is SolveStatus.UNSAT
        assert result.cubes_closed == len(result.plan.cubes)


# ----------------------------------------------------------------------
# Work-stealing shard scheduler
# ----------------------------------------------------------------------

class TestShardScheduler:
    def test_shard_of_is_stable(self):
        assert shard_of("foo", 4) == shard_of("foo", 4)
        assert 0 <= shard_of("foo", 4) < 4

    def test_all_jobs_complete_across_shards(self):
        jobs = _jobs(4)
        result = run_sharded(jobs, num_shards=2, workers_per_shard=2)
        assert len(result.results) == len(jobs) and not result.pending
        assert all(r.status is SolveStatus.UNSAT for r in result.results)
        launched = sum(s["launched"] for s in result.shards.values())
        assert launched == len(jobs)

    def test_idle_shard_steals_from_backlog(self):
        insts = _conflict_suite(8)
        skewed = [i for i in insts if shard_of(i.name, 2) == 0]
        assert len(skewed) >= 2, "suite must put >=2 instances on shard0"
        jobs = [BatchJob(i.name, i.problem, DIRECT) for i in skewed]
        result = run_sharded(jobs, num_shards=2, workers_per_shard=1)
        assert result.steals >= 1
        assert result.shards["shard1"]["stolen"] == result.steals
        assert len(result.results) == len(jobs) and not result.pending

    def test_crashed_shard_worker_requeues_zero_lost(self):
        jobs = _jobs(3)
        result = run_sharded(
            jobs, num_shards=2, workers_per_shard=1,
            quarantine=FAST_QUARANTINE,
            faults=FaultPlan.parse("seed=3; crash@dist_shard:match=*/s1"))
        assert len(result.results) == len(jobs) and not result.pending
        assert all(r.status is SolveStatus.UNSAT for r in result.results)
        assert sum(s["requeued"] for s in result.shards.values()) >= 1
        assert all(r.attempts == 2 and r.engine == "legacy"
                   for r in result.results)

    def test_single_shard_degenerates_to_flat_batch(self):
        jobs = _jobs(2)
        result = run_sharded(jobs, num_shards=1, max_workers=2)
        assert result.steals == 0
        assert len(result.results) == len(jobs)

    def test_dedup_fans_duplicates_back_out(self):
        jobs = _jobs(2)
        duplicated = jobs + [BatchJob(jobs[0].instance, jobs[0].problem,
                                      jobs[0].strategy)]
        result = run_sharded(duplicated, num_shards=2, workers_per_shard=1)
        assert len(result.results) == 3
        launched = sum(s["launched"] for s in result.shards.values())
        assert launched == 2  # the duplicate never dispatched

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            run_sharded([], num_shards=0)
        with pytest.raises(ValueError):
            run_sharded([], max_attempts=0)


# ----------------------------------------------------------------------
# Batch dedup (repro.bench.batch satellite)
# ----------------------------------------------------------------------

class TestBatchDedup:
    def test_run_batch_dedups_identical_jobs(self):
        from repro.bench.batch import run_batch
        inst = _conflict_suite(1)[0]
        jobs = [BatchJob(inst.name, inst.problem, DIRECT)
                for _ in range(3)]
        result = run_batch(jobs, max_workers=2)
        assert len(result.results) == 3
        assert all(r.status is SolveStatus.UNSAT for r in result.results)
        # All three carry the same wall time: one solve, fanned out.
        assert len({r.wall_time for r in result.results}) == 1

    def test_dedup_merges_same_content_across_names(self):
        # Content addressing, not name matching: distinct instance
        # names with identical (graph, colors, strategy) dedup too.
        from repro.bench.batch import run_batch
        problem = ColoringProblem(cycle_graph(5), 3)
        jobs = [BatchJob("c5-a", problem, DIRECT),
                BatchJob("c5-b", problem, DIRECT)]
        result = run_batch(jobs, max_workers=2)
        assert {r.job.instance for r in result.results} == {"c5-a", "c5-b"}
        assert len({r.wall_time for r in result.results}) == 1

    def test_dedup_opt_out(self):
        from repro.bench.batch import run_batch
        problem = ColoringProblem(cycle_graph(5), 3)
        jobs = [BatchJob("c5-a", problem, DIRECT),
                BatchJob("c5-b", problem, DIRECT)]
        result = run_batch(jobs, max_workers=2, dedup=False)
        assert len(result.results) == 2
        assert len({r.wall_time for r in result.results}) == 2


# ----------------------------------------------------------------------
# run_jobs policy facade
# ----------------------------------------------------------------------

class TestRunJobs:
    def test_one_worker_runs_monolithic(self):
        result = run_jobs(_jobs(2), workers=1)
        assert len(result.results) == 2
        assert all(r.status is SolveStatus.UNSAT for r in result.results)
        assert all("cubes" not in r.outcome.solver_stats
                   for r in result.results)

    def test_multi_worker_routes_through_cubes(self):
        result = run_jobs(_jobs(2), workers=2)
        assert len(result.results) == 2
        assert all(r.status is SolveStatus.UNSAT for r in result.results)
        assert all(r.outcome.solver_stats["cubes"] >= 2
                   for r in result.results)

    def test_cube_off_uses_shards(self):
        result = run_jobs(_jobs(2), workers=2, cube="off")
        assert isinstance(result, type(run_sharded([], num_shards=1)))
        assert len(result.results) == 2

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            run_jobs([], cube="sometimes")
        with pytest.raises(ValueError):
            run_jobs([], workers=0)
