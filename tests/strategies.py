"""Shared instance builders and hypothesis strategies.

One home for the seeded random builders (``make_random_cnf``,
``make_random_graph``) and the hypothesis strategies (``small_cnfs``,
``small_graphs``) that the solver, encoding and coloring suites all
exercise — previously each consumer pulled them from ``conftest``,
which also made them invisible to non-test tooling.  ``conftest``
re-exports everything here, so either import path works.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.coloring import Graph
from repro.sat import CNF

__all__ = ["make_random_cnf", "make_random_graph", "small_cnfs",
           "small_graphs"]


def make_random_cnf(num_vars: int, num_clauses: int, seed: int,
                    max_clause_len: int = 3) -> CNF:
    """Seeded random CNF used by solver cross-check tests."""
    rng = random.Random(seed)
    cnf = CNF(num_vars=num_vars)
    for _ in range(num_clauses):
        length = rng.randint(1, max_clause_len)
        cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, num_vars)
                        for _ in range(length)])
    return cnf


def make_random_graph(num_vertices: int, edge_probability: float,
                      seed: int) -> Graph:
    rng = random.Random(seed)
    graph = Graph(num_vertices)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


@st.composite
def small_graphs(draw, max_vertices: int = 8):
    """Hypothesis strategy for small random graphs."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return Graph(n, edges)


@st.composite
def small_cnfs(draw, max_vars: int = 8, max_clauses: int = 20):
    """Hypothesis strategy for small CNF formulas."""
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    num_clauses = draw(st.integers(min_value=0, max_value=max_clauses))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clauses = draw(st.lists(
        st.lists(literal, min_size=1, max_size=4), max_size=num_clauses))
    return CNF(clauses, num_vars=num_vars)
