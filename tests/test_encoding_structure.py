"""Structural invariants of every encoding, plus grammar fuzzing.

These tests don't solve anything: they certify the *shape* of what each
encoding generates, across domain sizes — the properties the paper's §2-§4
state in prose.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import ColoringProblem, complete_graph, is_colorable
from repro.core.encodings import (ALL_ENCODINGS, get_encoding,
                                  parse_encoding)
from repro.core.patterns import pattern_holds, patterns_are_distinct
from repro.sat import solve
from .strategies import make_random_graph

DOMAIN_SIZES = [1, 2, 3, 4, 5, 7, 8, 9, 13, 16]


@pytest.mark.parametrize("name", ALL_ENCODINGS)
class TestInvariants:
    def test_one_pattern_per_value(self, name):
        encoding = get_encoding(name)
        for k in DOMAIN_SIZES:
            vertex = encoding.vertex_encoding(k)
            assert len(vertex.patterns) == k
            assert vertex.num_values == k

    def test_patterns_distinct(self, name):
        encoding = get_encoding(name)
        for k in DOMAIN_SIZES:
            assert patterns_are_distinct(encoding.vertex_encoding(k).patterns)

    def test_patterns_fit_variable_block(self, name):
        from repro.core.patterns import check_pattern
        encoding = get_encoding(name)
        for k in DOMAIN_SIZES:
            vertex = encoding.vertex_encoding(k)
            for pattern in vertex.patterns:
                check_pattern(pattern, vertex.num_vars)

    def test_structural_clauses_fit_block(self, name):
        encoding = get_encoding(name)
        for k in DOMAIN_SIZES:
            vertex = encoding.vertex_encoding(k)
            for clause in vertex.clauses:
                assert all(1 <= abs(lit) <= vertex.num_vars for lit in clause)

    def test_every_assignment_selects_at_most_needed(self, name):
        """Exhaustively (for small blocks): every total assignment that
        satisfies the structural clauses selects at least one value."""
        encoding = get_encoding(name)
        for k in (2, 3, 5):
            vertex = encoding.vertex_encoding(k)
            if vertex.num_vars > 10:
                continue
            for bits in range(2 ** vertex.num_vars):
                values = [(bits >> i) & 1 == 1
                          for i in range(vertex.num_vars)]
                satisfies_structure = all(
                    any(values[abs(l) - 1] == (l > 0) for l in clause)
                    for clause in vertex.clauses)
                if not satisfies_structure:
                    continue
                selected = [v for v, p in enumerate(vertex.patterns)
                            if pattern_holds(p, values)]
                assert selected, (
                    f"{name}: structure-satisfying assignment selects "
                    f"no value (k={k}, bits={bits:b})")

    def test_vars_grow_monotonically(self, name):
        encoding = get_encoding(name)
        counts = [encoding.vars_per_vertex(k) for k in range(1, 20)]
        assert all(a <= b for a, b in zip(counts, counts[1:]))


class TestKnownVariableCounts:
    @pytest.mark.parametrize("name,k,expected", [
        ("direct", 13, 13),
        ("muldirect", 13, 13),
        ("log", 13, 4),
        ("ITE-linear", 13, 12),
        ("ITE-log", 13, 4),
        ("ITE-log-1+ITE-linear", 13, 7),
        ("ITE-log-2+ITE-linear", 13, 5),
        ("ITE-log-2+direct", 13, 6),
        ("ITE-log-2+muldirect", 13, 6),
        ("ITE-linear-2+direct", 13, 7),
        ("ITE-linear-2+muldirect", 13, 7),
        ("direct-3+direct", 13, 8),
        ("direct-3+muldirect", 13, 8),
        ("muldirect-3+direct", 13, 8),
        ("muldirect-3+muldirect", 13, 8),
    ])
    def test_figure1_domain(self, name, k, expected):
        assert get_encoding(name).vars_per_vertex(k) == expected


def _fuzzed_names(draw):
    schemes = ["log", "direct", "muldirect", "ITE-linear", "ITE-log"]
    depth = draw(st.integers(min_value=1, max_value=3))
    parts = []
    for level in range(depth - 1):
        scheme = draw(st.sampled_from(schemes))
        param = draw(st.integers(min_value=1, max_value=3))
        parts.append(f"{scheme}-{param}")
    parts.append(draw(st.sampled_from(schemes)))
    return "+".join(parts)


fuzzed_names = st.composite(_fuzzed_names)()


class TestGrammarFuzz:
    @settings(max_examples=40, deadline=None)
    @given(name=fuzzed_names, k=st.integers(min_value=1, max_value=9))
    def test_any_grammatical_encoding_is_wellformed(self, name, k):
        encoding = parse_encoding(name)
        vertex = encoding.vertex_encoding(k)
        assert len(vertex.patterns) == k
        assert patterns_are_distinct(vertex.patterns)

    @settings(max_examples=25, deadline=None)
    @given(name=fuzzed_names,
           k=st.integers(min_value=1, max_value=5),
           seed=st.integers(min_value=0, max_value=50))
    def test_any_grammatical_encoding_is_equisatisfiable(self, name, k, seed):
        graph = make_random_graph(6, 0.5, seed=seed)
        problem = ColoringProblem(graph, k)
        encoded = parse_encoding(name).encode(problem)
        result = solve(encoded.cnf)
        assert result.is_sat == is_colorable(graph, k)
        if result.is_sat:
            assert problem.is_valid_coloring(encoded.decode(result.model))


class TestConflictClauseCounts:
    def test_one_clause_per_edge_per_color(self):
        for name in ("muldirect", "ITE-log", "direct-3+muldirect"):
            problem = ColoringProblem(complete_graph(4), 5)
            encoded = get_encoding(name).encode(problem)
            structural = len(encoded.vertex_encoding.clauses) * 4
            conflicts = encoded.cnf.num_clauses - structural
            assert conflicts == 6 * 5  # |E| * K
