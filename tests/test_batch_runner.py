"""Tests for the concurrent batch runner (repro.bench.batch)."""

import multiprocessing
import os
import time

import pytest

from repro.bench import BatchJob, jobs_for, run_batch
from repro.bench import batch as batch_module
from repro.coloring import ColoringProblem, complete_graph, cycle_graph
from repro.core import Strategy
from repro.sat import CancelToken, SolveLimits, SolveStatus


def _easy_jobs(count=4):
    strategies = [Strategy("muldirect", "s1"), Strategy("direct", "s1")]
    jobs = []
    for i in range(count):
        problem = ColoringProblem(cycle_graph(5 + 2 * i), 3)
        for strategy in strategies:
            jobs.append(BatchJob(instance=f"cycle{5 + 2 * i}",
                                 problem=problem, strategy=strategy))
    return jobs


def _hard_job(instance="k11", seed=1):
    # Pigeonhole-hard without symmetry breaking: far beyond any deadline
    # used here.
    return BatchJob(instance=instance,
                    problem=ColoringProblem(complete_graph(11), 10),
                    strategy=Strategy("muldirect", "none", seed=seed))


class TestRunBatch:
    def test_all_jobs_complete(self):
        jobs = _easy_jobs()
        result = run_batch(jobs, max_workers=3)
        assert result.complete and not result.cancelled
        assert not result.pending
        assert len(result.results) == len(jobs)
        for job_result in result.results:
            assert job_result.status is SolveStatus.SAT
            assert job_result.outcome.is_sat
            assert job_result.attempts == 1

    def test_results_addressable_by_key(self):
        jobs = _easy_jobs(count=2)
        result = run_batch(jobs, max_workers=2)
        for job in jobs:
            outcome = result.outcome(job.instance, job.strategy)
            assert outcome.is_sat

    def test_status_counts(self):
        jobs = _easy_jobs(count=2)
        result = run_batch(jobs, max_workers=2)
        counts = result.status_counts()
        assert counts[SolveStatus.SAT] == len(jobs)

    def test_unsat_jobs_reported(self):
        job = BatchJob(instance="k5",
                       problem=ColoringProblem(complete_graph(5), 4),
                       strategy=Strategy("muldirect", "s1"))
        result = run_batch([job])
        assert result.results[0].status is SolveStatus.UNSAT
        assert result.complete

    def test_empty_batch(self):
        result = run_batch([])
        assert result.results == [] and result.pending == []
        assert result.complete and not result.cancelled

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            run_batch(_easy_jobs(1), max_workers=0)
        with pytest.raises(ValueError):
            run_batch(_easy_jobs(1), max_attempts=0)

    def test_jobs_for_builds_cross_product(self):
        class _FakeCSP:
            problem = ColoringProblem(cycle_graph(5), 3)
            build_time = 0.1

        class _FakeInstance:
            name = "fake"
            csp = _FakeCSP()

        strategies = [Strategy("muldirect", "s1"), Strategy("direct", "s1")]
        jobs = jobs_for([_FakeInstance()], strategies)
        assert len(jobs) == 2
        assert {j.key for j in jobs} == {
            ("fake", strategies[0].label), ("fake", strategies[1].label)}
        assert all(j.graph_time == 0.1 for j in jobs)


@pytest.mark.slow
class TestBatchDeadlines:
    def test_per_job_timeout_is_cooperative(self):
        jobs = [_hard_job(seed=s) for s in (1, 2)]
        start = time.perf_counter()
        result = run_batch(jobs, max_workers=2, job_timeout=0.4)
        elapsed = time.perf_counter() - start
        assert len(result.results) == 2
        for job_result in result.results:
            assert job_result.status is SolveStatus.TIMEOUT
            # Cooperative stop: the worker reported partial stats
            # itself instead of being hard-killed.
            assert job_result.outcome is not None
            assert job_result.outcome.solver_stats.get("conflicts", 0) > 0
        assert not result.cancelled  # job deadlines don't stop the batch
        assert elapsed < 10.0

    def test_conflict_budget_applies_per_job(self):
        result = run_batch([_hard_job()], limits=SolveLimits(conflict_budget=20))
        job_result = result.results[0]
        assert job_result.status is SolveStatus.BUDGET_EXHAUSTED
        assert job_result.outcome.solver_stats["conflicts"] == 20

    def test_batch_deadline_yields_partial_results(self):
        # One worker, several hard jobs: the batch deadline must stop
        # scheduling, wind down the in-flight job, and report the rest
        # as pending.
        jobs = [_hard_job(instance=f"k11-{i}", seed=i) for i in range(1, 5)]
        result = run_batch(jobs, max_workers=1, timeout=0.5)
        assert result.cancelled
        assert result.pending  # later jobs never started
        assert len(result.results) + len(result.pending) == len(jobs)
        for job_result in result.results:
            assert job_result.status is SolveStatus.TIMEOUT

    def test_pre_cancelled_token_runs_nothing(self):
        token = CancelToken()
        token.cancel()
        jobs = _easy_jobs(count=2)
        result = run_batch(jobs, cancel=token)
        assert result.cancelled
        assert not result.results
        assert [j.key for j in result.pending] == [j.key for j in jobs]


# Failure injection relies on fork-start workers inheriting the patched
# module state, exactly like the portfolio sick-member tests.
_DIE_SEED = 90002

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="failure injection requires fork-start workers")


def _flaky_solve(problem, strategy, graph_time=0.0, **kwargs):
    if strategy.seed == _DIE_SEED:
        os._exit(17)  # die unreported, like a crash/OOM kill
    from repro.core.pipeline import solve_coloring
    return solve_coloring(problem, strategy, graph_time=graph_time, **kwargs)


@fork_only
class TestCrashHandling:
    @pytest.fixture(autouse=True)
    def _patch_worker_solve(self, monkeypatch):
        monkeypatch.setattr(batch_module, "solve_coloring", _flaky_solve)

    def test_crashing_job_is_retried_then_error(self):
        job = BatchJob(instance="crasher",
                       problem=ColoringProblem(cycle_graph(5), 3),
                       strategy=Strategy("muldirect", "s1", seed=_DIE_SEED))
        result = run_batch([job], max_attempts=3)
        job_result = result.results[0]
        assert job_result.status is SolveStatus.ERROR
        assert job_result.attempts == 3
        assert "died without reporting" in job_result.error

    def test_crash_does_not_poison_healthy_jobs(self):
        crasher = BatchJob(instance="crasher",
                           problem=ColoringProblem(cycle_graph(5), 3),
                           strategy=Strategy("muldirect", "s1",
                                             seed=_DIE_SEED))
        healthy = BatchJob(instance="healthy",
                           problem=ColoringProblem(cycle_graph(9), 3),
                           strategy=Strategy("muldirect", "s1"))
        result = run_batch([crasher, healthy], max_workers=2, max_attempts=2)
        by_instance = {r.job.instance: r for r in result.results}
        assert by_instance["healthy"].status is SolveStatus.SAT
        assert by_instance["crasher"].status is SolveStatus.ERROR
        assert by_instance["crasher"].attempts == 2
