"""Tests for the sequential-AMO direct scheme (extension encoding)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import ColoringProblem, complete_graph, is_colorable
from repro.core.encodings import (EXTENSION_ENCODINGS, SEQDIRECT,
                                  get_encoding)
from repro.sat import solve
from repro.sat.solver.enumerate import enumerate_models
from repro.sat.cnf import CNF
from .strategies import make_random_graph, small_graphs


class TestScheme:
    def test_variable_counts(self):
        assert SEQDIRECT.num_vars(1) == 1
        assert SEQDIRECT.num_vars(2) == 2
        assert SEQDIRECT.num_vars(5) == 9   # 5 values + 4 ladder vars

    def test_patterns_ignore_auxiliaries(self):
        assert SEQDIRECT.patterns(4) == [(1,), (2,), (3,), (4,)]

    def test_clause_count_is_linear(self):
        # 1 ALO + 3(n-1) ladder clauses, vs direct's 1 + n(n-1)/2.
        for n in (3, 6, 12, 20):
            assert len(SEQDIRECT.structural_clauses(n)) == 1 + 3 * (n - 1) - 1

    def test_small_domains(self):
        assert SEQDIRECT.structural_clauses(1) == [(1,)]
        assert set(SEQDIRECT.structural_clauses(2)) == {(1, 2), (-1, -2)}

    def test_cannot_be_hierarchy_top(self):
        with pytest.raises(NotImplementedError):
            SEQDIRECT.num_subdomains(3)

    def test_exactly_one_value_in_every_model(self):
        """The ladder enforces genuine at-most-one: every model of the
        structural clauses selects exactly one value variable."""
        n = 5
        cnf = CNF(num_vars=SEQDIRECT.num_vars(n))
        for clause in SEQDIRECT.structural_clauses(n):
            cnf.add_clause(clause)
        for model in enumerate_models(cnf):
            assert sum(model.value(v) for v in range(1, n + 1)) == 1


class TestEquisatisfiability:
    @pytest.mark.parametrize("name", EXTENSION_ENCODINGS)
    def test_crafted(self, name):
        for k in (2, 3, 4, 6):
            problem = ColoringProblem(complete_graph(4), k)
            encoded = get_encoding(name).encode(problem)
            result = solve(encoded.cnf)
            assert result.is_sat == (k >= 4)
            if result.is_sat:
                assert problem.is_valid_coloring(encoded.decode(result.model))

    @settings(max_examples=20, deadline=None)
    @given(graph=small_graphs(max_vertices=6),
           k=st.integers(min_value=1, max_value=5),
           name=st.sampled_from(EXTENSION_ENCODINGS))
    def test_property(self, graph, k, name):
        problem = ColoringProblem(graph, k)
        encoded = get_encoding(name).encode(problem)
        assert solve(encoded.cnf).is_sat == is_colorable(graph, k)

    def test_symmetry_composes(self):
        from repro.core import Strategy, solve_coloring
        graph = make_random_graph(7, 0.6, seed=2)
        for sym in ("b1", "s1", "c1"):
            problem = ColoringProblem(graph, 3)
            outcome = solve_coloring(problem, Strategy("seqdirect", sym))
            assert outcome.is_sat == is_colorable(graph, 3)


class TestSizeAdvantage:
    def test_smaller_than_direct_at_scale(self):
        problem = ColoringProblem(complete_graph(4), 30)
        seq = get_encoding("seqdirect").encode(problem)
        plain = get_encoding("direct").encode(problem)
        assert seq.cnf.num_clauses < plain.cnf.num_clauses
        # ... at the cost of more variables (the ladder).
        assert seq.cnf.num_vars > plain.cnf.num_vars
