"""Tests for graphs and coloring problems."""

import pytest
from hypothesis import given

from repro.coloring import (ColoringProblem, Graph, complete_graph,
                            cycle_graph, random_graph)
from .strategies import small_graphs


class TestGraph:
    def test_empty(self):
        graph = Graph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_add_edge(self):
        graph = Graph(3)
        assert graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)
        assert graph.num_edges == 1

    def test_parallel_edges_collapse(self):
        graph = Graph(2)
        assert graph.add_edge(0, 1)
        assert not graph.add_edge(1, 0)
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph(2).add_edge(1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph(2).add_edge(0, 2)
        with pytest.raises(ValueError):
            Graph(2).degree(-1)

    def test_add_vertex(self):
        graph = Graph(1)
        assert graph.add_vertex() == 1
        graph.add_edge(0, 1)
        assert graph.num_vertices == 2

    def test_neighbors_and_degree(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.neighbors(0) == {1, 2, 3}
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1

    def test_edges_listed_once(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_max_degree_vertex(self):
        graph = Graph(4, [(0, 1), (1, 2), (1, 3)])
        assert graph.max_degree_vertex() == 1

    def test_max_degree_vertex_empty_graph(self):
        with pytest.raises(ValueError):
            Graph(0).max_degree_vertex()

    def test_subgraph_is_clique(self):
        graph = complete_graph(4)
        assert graph.subgraph_is_clique([0, 1, 2, 3])
        graph2 = cycle_graph(4)
        assert not graph2.subgraph_is_clique([0, 1, 2])
        assert graph2.subgraph_is_clique([0, 1])

    def test_copy_is_independent(self):
        graph = Graph(3, [(0, 1)])
        duplicate = graph.copy()
        duplicate.add_edge(1, 2)
        assert graph.num_edges == 1
        assert duplicate.num_edges == 2

    @given(small_graphs())
    def test_handshake_lemma(self, graph):
        assert sum(graph.degree(v) for v in range(graph.num_vertices)) \
            == 2 * graph.num_edges


class TestBuilders:
    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10

    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(v) == 2 for v in range(5))

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_random_graph_seeded(self):
        a = random_graph(10, 0.5, seed=1)
        b = random_graph(10, 0.5, seed=1)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random_graph_probability_extremes(self):
        assert random_graph(6, 0.0, seed=0).num_edges == 0
        assert random_graph(6, 1.0, seed=0).num_edges == 15

    def test_random_graph_bad_probability(self):
        with pytest.raises(ValueError):
            random_graph(3, 1.5, seed=0)


class TestColoringProblem:
    def test_valid_coloring(self, triangle):
        problem = ColoringProblem(triangle, 3)
        assert problem.is_valid_coloring({0: 0, 1: 1, 2: 2})

    def test_adjacent_same_color_invalid(self, triangle):
        problem = ColoringProblem(triangle, 3)
        assert not problem.is_valid_coloring({0: 0, 1: 0, 2: 1})

    def test_partial_coloring_invalid(self, triangle):
        problem = ColoringProblem(triangle, 3)
        assert not problem.is_valid_coloring({0: 0, 1: 1})

    def test_out_of_range_color_invalid(self, triangle):
        problem = ColoringProblem(triangle, 2)
        assert not problem.is_valid_coloring({0: 0, 1: 1, 2: 2})

    def test_violated_edges(self, square):
        problem = ColoringProblem(square, 2)
        assert problem.violated_edges({0: 0, 1: 0, 2: 0, 3: 1}) == [(0, 1), (1, 2)]

    def test_with_colors(self, triangle):
        problem = ColoringProblem(triangle, 3)
        narrowed = problem.with_colors(2)
        assert narrowed.num_colors == 2
        assert narrowed.graph is problem.graph

    def test_needs_positive_colors(self, triangle):
        with pytest.raises(ValueError):
            ColoringProblem(triangle, 0)

    def test_vertex_names_length_checked(self, triangle):
        with pytest.raises(ValueError):
            ColoringProblem(triangle, 2, vertex_names=["a"])
