"""Tests for DIMACS .col I/O."""

import pytest
from hypothesis import given

from repro.coloring import (Graph, parse_col_string, to_col_string,
                            parse_col_file, write_col_file)
from .strategies import small_graphs


class TestWrite:
    def test_format(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        text = to_col_string(graph, comments=["demo"])
        assert text == "c demo\np edge 3 2\ne 1 2\ne 2 3\n"

    def test_empty_graph(self):
        assert to_col_string(Graph(0)) == "p edge 0 0\n"


class TestParse:
    def test_basic(self):
        graph = parse_col_string("c hi\np edge 3 2\ne 1 2\ne 2 3\n")
        assert graph.num_vertices == 3
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_duplicate_edges_tolerated(self):
        graph = parse_col_string("p edge 2 2\ne 1 2\ne 2 1\n")
        assert graph.num_edges == 1

    def test_edges_before_problem_line(self):
        graph = parse_col_string("e 1 2\np edge 2 1\n")
        assert graph.num_edges == 1

    def test_missing_problem_line(self):
        with pytest.raises(ValueError):
            parse_col_string("e 1 2\n")

    def test_double_problem_line(self):
        with pytest.raises(ValueError):
            parse_col_string("p edge 2 0\np edge 2 0\n")

    def test_malformed_edge(self):
        with pytest.raises(ValueError):
            parse_col_string("p edge 2 1\ne 1\n")

    def test_unknown_line(self):
        with pytest.raises(ValueError):
            parse_col_string("p edge 2 1\nq 1 2\n")

    def test_out_of_range_vertex(self):
        with pytest.raises(ValueError):
            parse_col_string("p edge 2 1\ne 1 3\n")


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        graph = Graph(4, [(0, 1), (2, 3), (0, 3)])
        path = str(tmp_path / "g.col")
        write_col_file(graph, path, comments=["x"])
        parsed = parse_col_file(path)
        assert parsed.num_vertices == 4
        assert sorted(parsed.edges()) == sorted(graph.edges())

    @given(small_graphs())
    def test_round_trip_property(self, graph):
        parsed = parse_col_string(to_col_string(graph))
        assert parsed.num_vertices == graph.num_vertices
        assert sorted(parsed.edges()) == sorted(graph.edges())


class TestByteStability:
    """The writer is a pure function of the graph: equal graphs produce
    identical bytes, whatever order their edges were inserted in.
    Reproducer bundles (repro.qa) depend on this to diff cleanly."""

    def test_insertion_order_does_not_leak(self):
        forward = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        backward = Graph(4, [(0, 3), (2, 3), (1, 2), (0, 1)])
        assert to_col_string(forward) == to_col_string(backward)

    def test_edges_emitted_sorted(self):
        graph = Graph(3, [(1, 2), (0, 2), (0, 1)])
        assert to_col_string(graph) == \
            "p edge 3 3\ne 1 2\ne 1 3\ne 2 3\n"

    @given(small_graphs())
    def test_write_parse_write_fixpoint(self, graph):
        first = to_col_string(graph)
        assert to_col_string(parse_col_string(first)) == first
