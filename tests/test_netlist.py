"""Tests for nets, netlists and the synthetic generator."""

import pytest

from repro.fpga import CircuitSpec, Net, Netlist, generate_netlist


class TestNet:
    def test_basic(self):
        net = Net("a", (0, 0), ((1, 1), (2, 2)))
        assert net.fanout == 2
        assert net.pins == [(0, 0), (1, 1), (2, 2)]

    def test_no_sinks_rejected(self):
        with pytest.raises(ValueError):
            Net("a", (0, 0), ())

    def test_source_as_sink_rejected(self):
        with pytest.raises(ValueError):
            Net("a", (0, 0), ((0, 0),))

    def test_duplicate_sink_rejected(self):
        with pytest.raises(ValueError):
            Net("a", (0, 0), ((1, 1), (1, 1)))


class TestNetlist:
    def test_construction(self):
        netlist = Netlist("t", 3, 3, [Net("a", (0, 0), ((1, 1),))])
        assert netlist.num_nets == 1
        assert netlist.num_pins == 2

    def test_pin_bounds_checked(self):
        with pytest.raises(ValueError):
            Netlist("t", 2, 2, [Net("a", (0, 0), ((2, 0),))])

    def test_duplicate_names_rejected(self):
        nets = [Net("a", (0, 0), ((1, 1),)), Net("a", (1, 0), ((0, 1),))]
        with pytest.raises(ValueError):
            Netlist("t", 2, 2, nets)

    def test_hpwl(self):
        netlist = Netlist("t", 4, 4, [Net("a", (0, 0), ((3, 2),)),
                                      Net("b", (1, 1), ((1, 3),))])
        assert netlist.total_wirelength_lower_bound() == 5 + 2

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            Netlist("t", 0, 3)


class TestGenerator:
    def test_deterministic(self):
        spec = CircuitSpec("c", 6, 6, 30, seed=11)
        a = generate_netlist(spec)
        b = generate_netlist(spec)
        assert [(n.source, n.sinks) for n in a.nets] \
            == [(n.source, n.sinks) for n in b.nets]

    def test_different_seeds_differ(self):
        a = generate_netlist(CircuitSpec("c", 6, 6, 30, seed=1))
        b = generate_netlist(CircuitSpec("c", 6, 6, 30, seed=2))
        assert [(n.source, n.sinks) for n in a.nets] \
            != [(n.source, n.sinks) for n in b.nets]

    def test_net_count_and_validity(self):
        netlist = generate_netlist(CircuitSpec("c", 5, 7, 40, seed=3))
        assert netlist.num_nets == 40
        assert netlist.cols == 5 and netlist.rows == 7
        # Netlist constructor has already validated pin bounds and names.

    def test_fanout_respects_max(self):
        netlist = generate_netlist(
            CircuitSpec("c", 8, 8, 60, seed=4, max_fanout=3))
        assert all(1 <= net.fanout <= 3 for net in netlist.nets)

    def test_locality(self):
        # With a small mean distance, most sinks land near their source.
        netlist = generate_netlist(
            CircuitSpec("c", 20, 20, 100, seed=5, mean_distance=1.5))
        distances = [abs(s[0] - net.source[0]) + abs(s[1] - net.source[1])
                     for net in netlist.nets for s in net.sinks]
        assert sum(distances) / len(distances) < 5.0

    def test_tiny_array(self):
        netlist = generate_netlist(CircuitSpec("c", 2, 1, 5, seed=6))
        assert netlist.num_nets == 5

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CircuitSpec("c", 3, 3, 0, seed=0)
        with pytest.raises(ValueError):
            CircuitSpec("c", 3, 3, 5, seed=0, max_fanout=0)
        with pytest.raises(ValueError):
            CircuitSpec("c", 3, 3, 5, seed=0, mean_distance=0)
        with pytest.raises(ValueError):
            CircuitSpec("c", 1, 1, 5, seed=0)
