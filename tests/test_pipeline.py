"""Tests for strategies, the solving pipeline, and minimum-colors search."""

import pytest

from repro.coloring import ColoringProblem, complete_graph, cycle_graph
from repro.core import (BEST_SINGLE_STRATEGY, Strategy, minimum_colors,
                        solve_coloring)
from .strategies import make_random_graph


class TestStrategy:
    def test_label(self):
        assert Strategy("muldirect").label == "muldirect"
        assert Strategy("ITE-log", "s1").label == "ITE-log/s1"

    def test_validation_is_eager(self):
        with pytest.raises(ValueError):
            Strategy("nonsense")
        with pytest.raises(ValueError):
            Strategy("muldirect", "s9")
        with pytest.raises(ValueError):
            Strategy("muldirect", "s1", solver="chaff")

    def test_solver_config(self):
        config = Strategy("muldirect", solver="minisat_like", seed=7).solver_config()
        assert config.name == "minisat_like"
        assert config.seed == 7

    def test_paper_constants(self):
        assert BEST_SINGLE_STRATEGY.encoding == "ITE-linear-2+muldirect"
        assert BEST_SINGLE_STRATEGY.symmetry == "s1"

    def test_frozen(self):
        strategy = Strategy("muldirect")
        with pytest.raises(AttributeError):
            strategy.encoding = "log"


class TestSolveColoring:
    def test_sat_outcome(self):
        problem = ColoringProblem(cycle_graph(5), 3)
        outcome = solve_coloring(problem, Strategy("ITE-log", "s1"))
        assert outcome.is_sat
        assert problem.is_valid_coloring(outcome.coloring)
        assert outcome.num_vars > 0
        assert outcome.num_clauses > 0
        assert outcome.solve_time >= 0
        assert outcome.encode_time >= 0

    def test_unsat_outcome(self):
        problem = ColoringProblem(complete_graph(4), 3)
        outcome = solve_coloring(problem, Strategy("muldirect", "b1"))
        assert not outcome.is_sat
        assert outcome.coloring is None

    def test_total_time_includes_graph_time(self):
        problem = ColoringProblem(cycle_graph(4), 2)
        outcome = solve_coloring(problem, Strategy("log"), graph_time=1.5)
        assert outcome.total_time >= 1.5

    @pytest.mark.parametrize("solver", ["minisat_like", "siege_like"])
    def test_both_solver_presets(self, solver):
        problem = ColoringProblem(complete_graph(5), 4)
        outcome = solve_coloring(problem, Strategy("direct", solver=solver))
        assert not outcome.is_sat
        assert outcome.solver_stats["solver"] == solver


class TestMinimumColors:
    def test_complete_graph(self):
        problem = ColoringProblem(complete_graph(5), 1)
        assert minimum_colors(problem, Strategy("ITE-log", "s1")) == 5

    def test_odd_cycle(self):
        problem = ColoringProblem(cycle_graph(7), 1)
        assert minimum_colors(problem, Strategy("muldirect", "b1")) == 3

    def test_matches_oracle_on_random_graphs(self):
        from repro.coloring import chromatic_number
        strategy = Strategy("ITE-linear-2+muldirect", "s1")
        for seed in range(8):
            graph = make_random_graph(8, 0.5, seed=seed + 50)
            problem = ColoringProblem(graph, 1)
            assert minimum_colors(problem, strategy) == chromatic_number(graph)

    def test_empty_graph(self):
        from repro.coloring import Graph
        problem = ColoringProblem(Graph(0), 1)
        assert minimum_colors(problem, Strategy("log")) == 0

    def test_respects_explicit_bounds(self):
        problem = ColoringProblem(complete_graph(4), 1)
        assert minimum_colors(problem, Strategy("direct"), lower=4, upper=6) == 4
