"""Property/fuzz tests for the DIMACS ``.cnf`` and ``.col`` parsers.

Malformed input — random mutations of valid files and hand-picked edge
cases — must either parse or raise :class:`repro.errors.ParseError` (a
``ValueError`` subclass carrying the 1-based line number and source
name), never an unhandled ``IndexError`` / ``TypeError`` / bare
tokenising ``ValueError``.
"""

import random

import pytest

from repro.coloring import (cycle_graph, parse_col_string, parse_col_file,
                            to_col_string)
from repro.errors import ParseError
from repro.sat import CNF, parse_dimacs_string, parse_dimacs_file

VALID_CNF = CNF([(1, -2), (2, 3), (-1, -3), (1, 2, 3)]).to_dimacs()
VALID_COL = to_col_string(cycle_graph(6))

#: Junk injected into random positions of valid files.
MUTATIONS = ["xyz", "p", "p cnf", "p cnf a b", "p edge 3", "e 1", "e 1 a",
             "-", "1.5", "0x10", "e 0 0", "e 1 1", "e 99 100", "\x00", "??",
             "p cnf -3 2", "p edge -1 0", "c", "%", "e 1 2 3 4"]


def _mutate(text: str, rng: random.Random) -> str:
    """Randomly corrupt ``text``: splice junk, truncate, or shuffle."""
    lines = text.splitlines()
    action = rng.randrange(4)
    if action == 0:  # insert a junk line
        lines.insert(rng.randint(0, len(lines)), rng.choice(MUTATIONS))
    elif action == 1:  # replace a line with junk
        lines[rng.randrange(len(lines))] = rng.choice(MUTATIONS)
    elif action == 2:  # truncate mid-line
        index = rng.randrange(len(lines))
        line = lines[index]
        lines[index] = line[:rng.randint(0, len(line))]
    else:  # corrupt random characters
        index = rng.randrange(len(lines))
        chars = list(lines[index])
        for _ in range(rng.randint(1, 3)):
            if chars:
                chars[rng.randrange(len(chars))] = rng.choice("az!-. 0")
        lines[index] = "".join(chars)
    return "\n".join(lines) + "\n"


class TestCNFFuzz:
    @pytest.mark.parametrize("seed", range(200))
    def test_mutated_input_never_raises_unstructured(self, seed):
        rng = random.Random(seed)
        text = VALID_CNF
        for _ in range(rng.randint(1, 3)):
            text = _mutate(text, rng)
        try:
            parse_dimacs_string(text)
        except ParseError as error:
            assert error.line is None or error.line >= 1
            assert error.source == "<string>"
            assert "<string>" in str(error)

    @pytest.mark.parametrize("text,bad_line", [
        ("p cnf a 3\n1 0\n", 1),
        ("c ok\np cnf 3\n", 2),
        ("p cnf 3 2\n1 x 0\n", 2),
        ("p cnf -3 2\n", 1),
        ("p cnf 3 x\n", 1),
        ("1 2 0\nfrob 0\n", 2),
    ])
    def test_malformed_cnf_reports_line_number(self, text, bad_line):
        with pytest.raises(ParseError) as info:
            parse_dimacs_string(text)
        assert info.value.line == bad_line
        assert f"line {bad_line}" in str(info.value)

    def test_valid_cnf_round_trips(self):
        cnf = parse_dimacs_string(VALID_CNF)
        assert cnf.num_vars == 3 and cnf.num_clauses == 4

    def test_parse_error_is_a_value_error(self):
        # Old callers catching ValueError keep working.
        with pytest.raises(ValueError):
            parse_dimacs_string("p cnf a b\n")

    def test_file_parser_names_the_file(self, tmp_path):
        path = tmp_path / "bad.cnf"
        path.write_text("p cnf oops 1\n")
        with pytest.raises(ParseError) as info:
            parse_dimacs_file(str(path))
        assert info.value.source == str(path)
        assert str(path) in str(info.value)


class TestColFuzz:
    @pytest.mark.parametrize("seed", range(200))
    def test_mutated_input_never_raises_unstructured(self, seed):
        rng = random.Random(10_000 + seed)
        text = VALID_COL
        for _ in range(rng.randint(1, 3)):
            text = _mutate(text, rng)
        try:
            parse_col_string(text)
        except ParseError as error:
            assert error.line is None or error.line >= 1
            assert error.source == "<string>"

    @pytest.mark.parametrize("text,bad_line", [
        ("p edge a 1\n", 1),
        ("p edge 3\n", 1),
        ("e 1 2\np edge 3 1\np edge 3 1\n", 3),
        ("p edge 3 1\ne 1\n", 2),
        ("p edge 3 1\ne 1 x\n", 2),
        ("p edge 3 1\ne 1 1\n", 2),      # self-loop
        ("p edge 3 1\ne 1 99\n", 2),     # out of range
        ("p edge 3 1\nq 1 2\n", 2),      # unknown record
        ("p edge -3 0\n", 1),
    ])
    def test_malformed_col_reports_line_number(self, text, bad_line):
        with pytest.raises(ParseError) as info:
            parse_col_string(text)
        assert info.value.line == bad_line
        assert f"line {bad_line}" in str(info.value)

    def test_missing_problem_line(self):
        with pytest.raises(ParseError) as info:
            parse_col_string("c just a comment\ne 1 2\n")
        assert info.value.line is None

    def test_pre_header_edge_errors_name_their_own_line(self):
        # The bad edge is buffered before the header; the error must
        # still point at the edge's line, not the header's.
        with pytest.raises(ParseError) as info:
            parse_col_string("e 1 1\np edge 3 1\n")
        assert info.value.line == 1

    def test_valid_col_round_trips(self):
        graph = parse_col_string(VALID_COL)
        assert graph.num_vertices == 6 and graph.num_edges == 6

    def test_duplicate_and_reversed_edges_tolerated(self):
        graph = parse_col_string(
            "p edge 3 3\ne 1 2\ne 2 1\ne 1 2\n")
        assert graph.num_edges == 1

    def test_file_parser_names_the_file(self, tmp_path):
        path = tmp_path / "bad.col"
        path.write_text("p edge 2 1\ne 1 5\n")
        with pytest.raises(ParseError) as info:
            parse_col_file(str(path))
        assert info.value.source == str(path)
