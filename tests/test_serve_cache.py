"""The content-addressed result cache (repro.serve.cache)."""

import json
import os

import pytest

from repro.obs import metrics as obs_metrics
from repro.serve.cache import ResultCache


def digest(n):
    """A syntactically plausible 64-hex digest, distinct per n."""
    return f"{n:064x}"


def payload(n):
    return {"status": "SAT", "n": n}


class TestMemoryLayer:
    def test_miss_then_fill_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(digest(1)) is None
        cache.put(digest(1), payload(1))
        assert cache.get(digest(1)) == payload(1)
        assert cache.counts() == {"hits": 1, "misses": 1, "disk_hits": 0,
                                  "fills": 1, "evictions": 0,
                                  "superset_hits": 0, "warm_started": 0,
                                  "entries": 1, "capacity": 4}
        assert cache.hit_rate == 0.5

    def test_get_returns_a_copy(self):
        cache = ResultCache(capacity=4)
        cache.put(digest(1), payload(1))
        served = cache.get(digest(1))
        served["cached"] = True  # provenance stamping must not leak back
        assert "cached" not in cache.get(digest(1))

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put(digest(1), payload(1))
        cache.put(digest(2), payload(2))
        assert cache.get(digest(1)) is not None  # 1 is now MRU
        cache.put(digest(3), payload(3))         # evicts 2, not 1
        assert digest(2) not in cache
        assert digest(1) in cache and digest(3) in cache
        assert cache.counts()["evictions"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_len_and_clear(self):
        cache = ResultCache(capacity=4)
        cache.put(digest(1), payload(1))
        cache.put(digest(2), payload(2))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get(digest(1)) is None  # no disk layer to warm from


class TestDiskLayer:
    def test_persists_across_instances(self, tmp_path):
        first = ResultCache(capacity=4, disk_dir=str(tmp_path))
        first.put(digest(1), payload(1))
        # A fresh process (new cache, same directory) warms from disk.
        second = ResultCache(capacity=4, disk_dir=str(tmp_path))
        assert second.get(digest(1)) == payload(1)
        counts = second.counts()
        assert counts["disk_hits"] == 1 and counts["hits"] == 1
        # The disk hit promoted the entry into memory.
        assert second.get(digest(1)) == payload(1)
        assert second.counts()["disk_hits"] == 1

    def test_shard_layout_and_atomic_bytes(self, tmp_path):
        cache = ResultCache(capacity=4, disk_dir=str(tmp_path))
        cache.put(digest(1), payload(1))
        path = os.path.join(str(tmp_path), digest(1)[:2],
                            digest(1) + ".json")
        assert os.path.exists(path)
        with open(path, "r", encoding="utf-8") as stream:
            assert json.load(stream) == payload(1)
        # No temp-file litter left behind.
        shard = os.path.dirname(path)
        assert all(not name.startswith(".tmp-")
                   for name in os.listdir(shard))

    def test_corrupt_file_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(capacity=4, disk_dir=str(tmp_path))
        cache.put(digest(1), payload(1))
        path = os.path.join(str(tmp_path), digest(1)[:2],
                            digest(1) + ".json")
        with open(path, "w", encoding="utf-8") as stream:
            stream.write('{"torn": ')
        fresh = ResultCache(capacity=4, disk_dir=str(tmp_path))
        assert fresh.get(digest(1)) is None
        assert not os.path.exists(path)
        assert fresh.counts()["misses"] == 1

    def test_non_dict_json_is_a_miss(self, tmp_path):
        cache = ResultCache(capacity=4, disk_dir=str(tmp_path))
        path = os.path.join(str(tmp_path), digest(1)[:2],
                            digest(1) + ".json")
        os.makedirs(os.path.dirname(path))
        with open(path, "w", encoding="utf-8") as stream:
            stream.write("[1, 2, 3]")
        assert cache.get(digest(1)) is None

    def test_eviction_is_not_a_disk_loss(self, tmp_path):
        cache = ResultCache(capacity=1, disk_dir=str(tmp_path))
        cache.put(digest(1), payload(1))
        cache.put(digest(2), payload(2))  # evicts 1 from memory
        assert digest(1) not in cache
        assert cache.get(digest(1)) == payload(1)  # disk still has it
        assert cache.counts()["disk_hits"] == 1

    def test_clear_keeps_disk(self, tmp_path):
        cache = ResultCache(capacity=4, disk_dir=str(tmp_path))
        cache.put(digest(1), payload(1))
        cache.clear()
        assert cache.get(digest(1)) == payload(1)


def indexed(n, base, strategies, status="SAT"):
    """A fill payload carrying the provenance the superset index uses
    (the server stamps these in ``_fill_cache``)."""
    return {"status": status, "n": n, "digest": digest(n), "base": base,
            "strategies": strategies}


class TestSupersetLookup:
    def test_subset_strategy_answer_satisfies_a_larger_request(self):
        cache = ResultCache(capacity=8)
        cache.put(digest(1), indexed(1, "b1", ["direct"]))
        hit = cache.superset_get("b1", ["direct", "log"])
        assert hit is not None and hit["n"] == 1
        assert cache.counts()["superset_hits"] == 1

    def test_larger_or_disjoint_cached_sets_do_not_match(self):
        cache = ResultCache(capacity=8)
        cache.put(digest(1), indexed(1, "b1", ["direct", "log"]))
        # The cached entry raced *more* strategies than asked for: its
        # first decided answer may have come from the extra one.
        assert cache.superset_get("b1", ["direct"]) is None
        assert cache.superset_get("b1", ["support"]) is None
        assert cache.superset_get("b2", ["direct", "log"]) is None

    def test_undecided_entries_never_satisfy(self):
        cache = ResultCache(capacity=8)
        cache.put(digest(1), indexed(1, "b1", ["direct"],
                                     status="TIMEOUT"))
        assert cache.superset_get("b1", ["direct", "log"]) is None
        assert cache.counts()["superset_hits"] == 0

    def test_superset_hit_returns_a_copy(self):
        cache = ResultCache(capacity=8)
        cache.put(digest(1), indexed(1, "b1", ["direct"]))
        served = cache.superset_get("b1", ["direct", "log"])
        served["cached"] = True
        assert "cached" not in cache.superset_get("b1", ["direct"])

    def test_index_survives_eviction_via_disk(self, tmp_path):
        cache = ResultCache(capacity=1, disk_dir=str(tmp_path))
        cache.put(digest(1), indexed(1, "b1", ["direct"]))
        cache.put(digest(2), indexed(2, "b2", ["direct"]))  # evicts 1
        hit = cache.superset_get("b1", ["direct", "log"])
        assert hit is not None and hit["n"] == 1


class TestWarmStart:
    def test_boot_promotes_disk_entries_into_memory(self, tmp_path):
        first = ResultCache(capacity=8, disk_dir=str(tmp_path))
        for n in range(3):
            first.put(digest(n), payload(n))
        fresh = ResultCache(capacity=8, disk_dir=str(tmp_path))
        assert fresh.warm_start() == 3
        assert fresh.counts()["warm_started"] == 3
        # Warm entries are served from memory, not re-read from disk.
        assert fresh.get(digest(1)) == payload(1)
        assert fresh.counts()["disk_hits"] == 0

    def test_warm_start_respects_capacity_and_limit(self, tmp_path):
        seed = ResultCache(capacity=8, disk_dir=str(tmp_path))
        for n in range(5):
            seed.put(digest(n), payload(n))
        small = ResultCache(capacity=2, disk_dir=str(tmp_path))
        assert small.warm_start() == 2  # never beyond the LRU capacity
        limited = ResultCache(capacity=8, disk_dir=str(tmp_path))
        assert limited.warm_start(limit=1) == 1

    def test_warm_start_rebuilds_the_superset_index(self, tmp_path):
        first = ResultCache(capacity=8, disk_dir=str(tmp_path))
        first.put(digest(1), indexed(1, "b1", ["direct"]))
        fresh = ResultCache(capacity=8, disk_dir=str(tmp_path))
        assert fresh.warm_start() == 1
        assert fresh.superset_get("b1", ["direct", "log"]) is not None

    def test_warm_start_without_a_disk_dir_is_a_noop(self):
        assert ResultCache(capacity=4).warm_start() == 0

    def test_warm_start_is_idempotent(self, tmp_path):
        seed = ResultCache(capacity=8, disk_dir=str(tmp_path))
        seed.put(digest(1), payload(1))
        fresh = ResultCache(capacity=8, disk_dir=str(tmp_path))
        assert fresh.warm_start() == 1
        assert fresh.warm_start() == 0  # already in memory


class TestMetricsMirror:
    def test_counters_mirrored_when_enabled(self):
        obs_metrics.enable(True)
        try:
            obs_metrics.registry().reset()
            cache = ResultCache(capacity=1)
            cache.get(digest(1))            # miss
            cache.put(digest(1), payload(1))
            cache.get(digest(1))            # hit
            cache.put(digest(2), payload(2))  # fill + eviction
            snapshot = obs_metrics.registry().snapshot()
            counters = snapshot["counters"]
            assert counters["serve.cache.misses"] == 1
            assert counters["serve.cache.hits"] == 1
            assert counters["serve.cache.fills"] == 2
            assert counters["serve.cache.evictions"] == 1
        finally:
            obs_metrics.registry().reset()
            obs_metrics.enable(False)

    def test_no_mirroring_when_disabled(self):
        obs_metrics.enable(False)
        obs_metrics.registry().reset()
        cache = ResultCache(capacity=2)
        cache.get(digest(1))
        cache.put(digest(1), payload(1))
        assert "serve.cache.misses" not in (
            obs_metrics.registry().snapshot()["counters"])
