"""The content-addressed result cache (repro.serve.cache)."""

import json
import os

import pytest

from repro.obs import metrics as obs_metrics
from repro.serve.cache import ResultCache


def digest(n):
    """A syntactically plausible 64-hex digest, distinct per n."""
    return f"{n:064x}"


def payload(n):
    return {"status": "SAT", "n": n}


class TestMemoryLayer:
    def test_miss_then_fill_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(digest(1)) is None
        cache.put(digest(1), payload(1))
        assert cache.get(digest(1)) == payload(1)
        assert cache.counts() == {"hits": 1, "misses": 1, "disk_hits": 0,
                                  "fills": 1, "evictions": 0,
                                  "entries": 1, "capacity": 4}
        assert cache.hit_rate == 0.5

    def test_get_returns_a_copy(self):
        cache = ResultCache(capacity=4)
        cache.put(digest(1), payload(1))
        served = cache.get(digest(1))
        served["cached"] = True  # provenance stamping must not leak back
        assert "cached" not in cache.get(digest(1))

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put(digest(1), payload(1))
        cache.put(digest(2), payload(2))
        assert cache.get(digest(1)) is not None  # 1 is now MRU
        cache.put(digest(3), payload(3))         # evicts 2, not 1
        assert digest(2) not in cache
        assert digest(1) in cache and digest(3) in cache
        assert cache.counts()["evictions"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_len_and_clear(self):
        cache = ResultCache(capacity=4)
        cache.put(digest(1), payload(1))
        cache.put(digest(2), payload(2))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get(digest(1)) is None  # no disk layer to warm from


class TestDiskLayer:
    def test_persists_across_instances(self, tmp_path):
        first = ResultCache(capacity=4, disk_dir=str(tmp_path))
        first.put(digest(1), payload(1))
        # A fresh process (new cache, same directory) warms from disk.
        second = ResultCache(capacity=4, disk_dir=str(tmp_path))
        assert second.get(digest(1)) == payload(1)
        counts = second.counts()
        assert counts["disk_hits"] == 1 and counts["hits"] == 1
        # The disk hit promoted the entry into memory.
        assert second.get(digest(1)) == payload(1)
        assert second.counts()["disk_hits"] == 1

    def test_shard_layout_and_atomic_bytes(self, tmp_path):
        cache = ResultCache(capacity=4, disk_dir=str(tmp_path))
        cache.put(digest(1), payload(1))
        path = os.path.join(str(tmp_path), digest(1)[:2],
                            digest(1) + ".json")
        assert os.path.exists(path)
        with open(path, "r", encoding="utf-8") as stream:
            assert json.load(stream) == payload(1)
        # No temp-file litter left behind.
        shard = os.path.dirname(path)
        assert all(not name.startswith(".tmp-")
                   for name in os.listdir(shard))

    def test_corrupt_file_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(capacity=4, disk_dir=str(tmp_path))
        cache.put(digest(1), payload(1))
        path = os.path.join(str(tmp_path), digest(1)[:2],
                            digest(1) + ".json")
        with open(path, "w", encoding="utf-8") as stream:
            stream.write('{"torn": ')
        fresh = ResultCache(capacity=4, disk_dir=str(tmp_path))
        assert fresh.get(digest(1)) is None
        assert not os.path.exists(path)
        assert fresh.counts()["misses"] == 1

    def test_non_dict_json_is_a_miss(self, tmp_path):
        cache = ResultCache(capacity=4, disk_dir=str(tmp_path))
        path = os.path.join(str(tmp_path), digest(1)[:2],
                            digest(1) + ".json")
        os.makedirs(os.path.dirname(path))
        with open(path, "w", encoding="utf-8") as stream:
            stream.write("[1, 2, 3]")
        assert cache.get(digest(1)) is None

    def test_eviction_is_not_a_disk_loss(self, tmp_path):
        cache = ResultCache(capacity=1, disk_dir=str(tmp_path))
        cache.put(digest(1), payload(1))
        cache.put(digest(2), payload(2))  # evicts 1 from memory
        assert digest(1) not in cache
        assert cache.get(digest(1)) == payload(1)  # disk still has it
        assert cache.counts()["disk_hits"] == 1

    def test_clear_keeps_disk(self, tmp_path):
        cache = ResultCache(capacity=4, disk_dir=str(tmp_path))
        cache.put(digest(1), payload(1))
        cache.clear()
        assert cache.get(digest(1)) == payload(1)


class TestMetricsMirror:
    def test_counters_mirrored_when_enabled(self):
        obs_metrics.enable(True)
        try:
            obs_metrics.registry().reset()
            cache = ResultCache(capacity=1)
            cache.get(digest(1))            # miss
            cache.put(digest(1), payload(1))
            cache.get(digest(1))            # hit
            cache.put(digest(2), payload(2))  # fill + eviction
            snapshot = obs_metrics.registry().snapshot()
            counters = snapshot["counters"]
            assert counters["serve.cache.misses"] == 1
            assert counters["serve.cache.hits"] == 1
            assert counters["serve.cache.fills"] == 2
            assert counters["serve.cache.evictions"] == 1
        finally:
            obs_metrics.registry().reset()
            obs_metrics.enable(False)

    def test_no_mirroring_when_disabled(self):
        obs_metrics.enable(False)
        obs_metrics.registry().reset()
        cache = ResultCache(capacity=2)
        cache.get(digest(1))
        cache.put(digest(1), payload(1))
        assert "serve.cache.misses" not in (
            obs_metrics.registry().snapshot()["counters"])
