"""Tests for the b1/s1 symmetry-breaking heuristics and their clauses."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import (ColoringProblem, Graph, complete_graph,
                            is_colorable)
from repro.core.encodings import ALL_ENCODINGS, get_encoding
from repro.core.symmetry import (apply_symmetry, b1_sequence, c1_sequence,
                                 get_heuristic, s1_sequence, symmetry_clauses)
from repro.sat import solve
from .strategies import make_random_graph, small_graphs


def star_with_tail():
    """Vertex 0 has degree 4; vertex 5 dangles off vertex 1."""
    return Graph(6, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 5)])


class TestSequences:
    def test_b1_starts_at_max_degree(self):
        graph = star_with_tail()
        assert b1_sequence(graph, 4)[0] == 0

    def test_b1_picks_neighbors_by_degree(self):
        graph = star_with_tail()
        # K=4: first vertex 0, then its 2 highest-degree neighbours;
        # vertex 1 (degree 2) beats vertices 2-4 (degree 1).
        sequence = b1_sequence(graph, 4)
        assert len(sequence) == 3
        assert sequence[1] == 1

    def test_s1_takes_global_top_degrees(self):
        graph = star_with_tail()
        sequence = s1_sequence(graph, 3)
        assert sequence == [0, 1]

    def test_s1_tie_break_by_neighbor_degree_sum(self):
        # Vertices 0 and 3 both have degree 2; 0's neighbours are heavier.
        graph = Graph(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5)])
        sequence = s1_sequence(graph, 2)
        assert sequence == [0]

    def test_sequences_never_exceed_k_minus_1(self):
        graph = complete_graph(6)
        assert len(b1_sequence(graph, 4)) <= 3
        assert len(s1_sequence(graph, 4)) == 3

    def test_k1_gives_empty_sequence(self):
        graph = complete_graph(3)
        assert b1_sequence(graph, 1) == []
        assert s1_sequence(graph, 1) == []

    def test_empty_graph(self):
        assert b1_sequence(Graph(0), 3) == []
        assert s1_sequence(Graph(0), 3) == []

    def test_no_duplicates(self):
        graph = make_random_graph(10, 0.4, seed=5)
        for k in (2, 4, 6):
            for heuristic in (b1_sequence, s1_sequence):
                sequence = heuristic(graph, k)
                assert len(set(sequence)) == len(sequence)

    def test_lookup(self):
        assert get_heuristic("b1") is b1_sequence
        assert get_heuristic("s1") is s1_sequence
        assert get_heuristic("c1") is c1_sequence
        assert get_heuristic("none")(complete_graph(3), 3) == []
        with pytest.raises(ValueError):
            get_heuristic("s2")

    def test_c1_picks_a_clique(self):
        graph = make_random_graph(10, 0.5, seed=4)
        for k in (3, 4, 5):
            sequence = c1_sequence(graph, k)
            assert len(sequence) <= k - 1
            assert graph.subgraph_is_clique(sequence)

    def test_c1_empty_cases(self):
        from repro.coloring import Graph
        assert c1_sequence(Graph(0), 4) == []
        assert c1_sequence(complete_graph(3), 1) == []


class TestClauses:
    def test_first_vertex_pinned_to_color_zero(self):
        problem = ColoringProblem(complete_graph(3), 3)
        encoded = get_encoding("direct").encode(problem)
        clauses = symmetry_clauses(encoded, [0])
        # forbid colors 1 and 2 at vertex 0 (vars 2 and 3)
        assert set(clauses) == {(-2,), (-3,)}

    def test_clause_count(self):
        problem = ColoringProblem(complete_graph(5), 4)
        encoded = get_encoding("muldirect").encode(problem)
        # i-th vertex forbids K-1-i colors: 3 + 2 + 1 = 6
        assert len(symmetry_clauses(encoded, [0, 1, 2])) == 6

    def test_sequence_too_long_rejected(self):
        problem = ColoringProblem(complete_graph(4), 3)
        encoded = get_encoding("direct").encode(problem)
        with pytest.raises(ValueError):
            symmetry_clauses(encoded, [0, 1, 2])

    def test_repeated_vertex_rejected(self):
        problem = ColoringProblem(complete_graph(4), 4)
        encoded = get_encoding("direct").encode(problem)
        with pytest.raises(ValueError):
            symmetry_clauses(encoded, [0, 0])

    def test_apply_returns_count(self):
        problem = ColoringProblem(complete_graph(4), 4)
        encoded = get_encoding("direct").encode(problem)
        before = encoded.cnf.num_clauses
        added = apply_symmetry(encoded, "s1")
        assert added == encoded.cnf.num_clauses - before
        assert added == 3 + 2 + 1


class TestSoundness:
    """Symmetry breaking must never change satisfiability — for any
    encoding, heuristic and graph (paper §5's argument)."""

    @pytest.mark.parametrize("name", ALL_ENCODINGS)
    @pytest.mark.parametrize("heuristic", ["b1", "s1", "c1"])
    def test_boundary_cases(self, name, heuristic):
        for graph, k in [(complete_graph(4), 3), (complete_graph(4), 4),
                         (make_random_graph(7, 0.5, seed=1), 3)]:
            problem = ColoringProblem(graph, k)
            encoded = get_encoding(name).encode(problem)
            apply_symmetry(encoded, heuristic)
            result = solve(encoded.cnf)
            assert result.is_sat == is_colorable(graph, k)
            if result.is_sat:
                coloring = encoded.decode(result.model)
                assert problem.is_valid_coloring(coloring)

    @settings(max_examples=20, deadline=None)
    @given(graph=small_graphs(max_vertices=7),
           num_colors=st.integers(min_value=2, max_value=4),
           name=st.sampled_from(ALL_ENCODINGS),
           heuristic=st.sampled_from(["b1", "s1", "c1"]))
    def test_soundness_property(self, graph, num_colors, name, heuristic):
        problem = ColoringProblem(graph, num_colors)
        encoded = get_encoding(name).encode(problem)
        apply_symmetry(encoded, heuristic)
        assert solve(encoded.cnf).is_sat == is_colorable(graph, num_colors)

    def test_restricted_vertex_actually_restricted(self):
        """With s1, the decoded color of the first sequence vertex is 0."""
        graph = make_random_graph(8, 0.4, seed=9)
        problem = ColoringProblem(graph, 4)
        encoded = get_encoding("direct").encode(problem)
        sequence = s1_sequence(graph, 4)
        apply_symmetry(encoded, "s1")
        result = solve(encoded.cnf)
        if result.is_sat:
            coloring = encoded.decode(result.model)
            for position, vertex in enumerate(sequence):
                assert coloring[vertex] <= position
