"""Tests for DRUP-style proof logging and the independent RUP checker."""

import pytest

from repro.sat import (CNF, ProofError, SolverConfig, check_rup_proof,
                       solve_by_enumeration, solve_with_proof)
from repro.sat.solver.cdcl import CDCLSolver
from .strategies import make_random_cnf
from .test_cdcl import pigeonhole


class TestProofLogging:
    def test_disabled_by_default(self):
        solver = CDCLSolver(pigeonhole(4))
        solver.solve()
        assert solver.proof == []

    def test_unsat_proof_ends_with_empty_clause(self):
        result, proof = solve_with_proof(pigeonhole(4))
        assert not result.is_sat
        assert proof[-1] == ()
        assert len(proof) >= 2

    def test_sat_run_logs_no_empty_clause(self):
        result, proof = solve_with_proof(CNF([[1, 2], [-1, 2]]))
        assert result.is_sat
        assert () not in proof

    def test_root_level_unsat_has_trivial_proof(self):
        result, proof = solve_with_proof(CNF([[1], [-1]]))
        assert not result.is_sat
        assert proof == [()]

    def test_respects_existing_config(self):
        from repro.sat import siege_like
        result, proof = solve_with_proof(pigeonhole(4), siege_like())
        assert not result.is_sat
        assert proof[-1] == ()


class TestProofChecking:
    @pytest.mark.parametrize("holes", [3, 4, 5])
    def test_pigeonhole_proofs_verify(self, holes):
        cnf = pigeonhole(holes)
        result, proof = solve_with_proof(cnf)
        assert not result.is_sat
        assert check_rup_proof(cnf, proof) == len(proof)

    def test_both_solver_presets_produce_checkable_proofs(self):
        from repro.sat import minisat_like, siege_like
        cnf = pigeonhole(5)
        for preset in (minisat_like(), siege_like()):
            result, proof = solve_with_proof(cnf, preset)
            assert not result.is_sat
            check_rup_proof(cnf, proof)

    @pytest.mark.parametrize("seed", range(30))
    def test_random_unsat_proofs_verify(self, seed):
        cnf = make_random_cnf(num_vars=8, num_clauses=35, seed=seed + 7000)
        if solve_by_enumeration(cnf).is_sat:
            pytest.skip("instance is satisfiable")
        result, proof = solve_with_proof(cnf)
        assert not result.is_sat
        check_rup_proof(cnf, proof)

    def test_clause_db_reduction_does_not_break_proofs(self):
        config = SolverConfig(proof_log=True, max_learnts_factor=0.01,
                              max_learnts_growth=1.0)
        cnf = pigeonhole(5)
        solver = CDCLSolver(cnf, config)
        assert not solver.solve().is_sat
        assert solver.stats["deleted_clauses"] > 0
        check_rup_proof(cnf, solver.proof)


class TestProofRejection:
    def _unsat_cnf(self):
        return CNF([[1, 2], [-1, 2], [-2, 1], [-1, -2]])

    def test_non_rup_step_rejected(self):
        with pytest.raises(ProofError, match="not RUP"):
            check_rup_proof(self._unsat_cnf(), [()])

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ProofError, match="outside"):
            check_rup_proof(self._unsat_cnf(), [(5,), ()])

    def test_zero_literal_rejected(self):
        with pytest.raises(ProofError, match="outside"):
            check_rup_proof(self._unsat_cnf(), [(0,)])

    def test_missing_empty_clause_rejected(self):
        cnf = CNF([[1, 2], [-1, 2]])  # satisfiable: nothing derives ()
        with pytest.raises(ProofError, match="empty clause"):
            check_rup_proof(cnf, [(2,)])

    def test_missing_empty_clause_allowed_when_optional(self):
        cnf = CNF([[1, 2], [-1, 2]])
        assert check_rup_proof(cnf, [(2,)], require_empty_clause=False) == 1

    def test_valid_manual_proof(self):
        # (2) is RUP; adding it propagates to a root contradiction.
        assert check_rup_proof(self._unsat_cnf(), [(2,), ()]) == 2

    def test_unit_that_collapses_formula_is_complete_proof(self):
        # Adding (1) and propagating reaches the root conflict, so the
        # empty clause is derived implicitly.
        assert check_rup_proof(self._unsat_cnf(), [(1,)]) == 1

    def test_tautology_step_is_harmless(self):
        assert check_rup_proof(self._unsat_cnf(),
                               [(1, -1), (2,), ()]) == 3


class TestEndToEndRoutingCertificate:
    def test_unroutability_certificate(self):
        """The paper's headline capability with a checkable artifact: an
        UNSAT answer for a routing instance verifies independently."""
        from repro.core import get_encoding
        from repro.core.symmetry import apply_symmetry
        from repro.fpga import build_routing_csp, load_routing
        from repro.fpga.flow import minimum_channel_width
        from repro.core import Strategy

        routing = load_routing("alu2", scale=0.6)
        width = minimum_channel_width(
            routing, Strategy("ITE-linear-2+muldirect", "s1"))
        csp = build_routing_csp(routing, width - 1)
        encoded = get_encoding("ITE-log").encode(csp.problem)
        apply_symmetry(encoded, "s1")
        result, proof = solve_with_proof(encoded.cnf)
        assert not result.is_sat
        assert check_rup_proof(encoded.cnf, proof) == len(proof)
