"""End-to-end determinism: everything the docs claim is seeded really is.

The reproduction's credibility rests on every artifact being a pure
function of its seeds; these tests re-derive key artifacts twice and
require bit-identical results.
"""

from repro.core import Strategy, solve_coloring
from repro.fpga import build_routing_csp, load_netlist, load_routing
from repro.fpga.io import netlist_to_json, routing_to_text


class TestArtifactDeterminism:
    def test_netlist_json_identical(self):
        assert netlist_to_json(load_netlist("C880", scale=0.7)) \
            == netlist_to_json(load_netlist("C880", scale=0.7))

    def test_global_routing_identical(self):
        a = load_routing("alu2", scale=0.7)
        b = load_routing("alu2", scale=0.7)
        assert routing_to_text(a) == routing_to_text(b)

    def test_conflict_graph_identical(self):
        a = build_routing_csp(load_routing("alu2", scale=0.7), 4)
        b = build_routing_csp(load_routing("alu2", scale=0.7), 4)
        assert a.to_dimacs_col() == b.to_dimacs_col()

    def test_cnf_identical(self):
        from repro.core import get_encoding
        a = build_routing_csp(load_routing("alu2", scale=0.7), 4)
        b = build_routing_csp(load_routing("alu2", scale=0.7), 4)
        cnf_a = get_encoding("ITE-linear-2+muldirect").encode(a.problem).cnf
        cnf_b = get_encoding("ITE-linear-2+muldirect").encode(b.problem).cnf
        assert cnf_a.to_dimacs() == cnf_b.to_dimacs()


class TestSearchDeterminism:
    def test_solver_trajectory_identical(self):
        csp = build_routing_csp(load_routing("alu2", scale=0.7), 3)
        strategy = Strategy("ITE-log", "s1", seed=5)
        first = solve_coloring(csp.problem, strategy)
        second = solve_coloring(csp.problem, strategy)
        assert first.is_sat == second.is_sat
        for key in ("conflicts", "decisions", "propagations"):
            assert first.solver_stats[key] == second.solver_stats[key]
        assert first.coloring == second.coloring

    def test_different_seeds_may_differ_but_agree_on_answer(self):
        csp = build_routing_csp(load_routing("alu2", scale=0.7), 3)
        outcomes = [solve_coloring(csp.problem,
                                   Strategy("ITE-log", "s1", seed=s))
                    for s in range(4)]
        answers = {o.is_sat for o in outcomes}
        assert len(answers) == 1

    def test_placement_deterministic(self):
        from repro.fpga import AnnealingPlacer, random_logical_netlist
        logical = random_logical_netlist(15, 30, seed=9)
        a = AnnealingPlacer(4, 4, seed=2).place(logical)
        b = AnnealingPlacer(4, 4, seed=2).place(logical)
        assert a.positions == b.positions
