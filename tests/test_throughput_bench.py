"""Smoke tests for the BCP throughput bench (repro.bench.throughput).

Tier-1 safe: runs the bench at a tiny setting and checks the artifact is
valid JSON with the expected shape — no timing assertions, so the test
cannot flake on a loaded machine.  The real >= 1.5x acceptance assertion
lives in benchmarks/test_bench_solver_throughput.py.
"""

import json

import pytest

from repro.bench.throughput import (bcp_stress, check_floor, conflict_configs,
                                    main, measure_conflict_instance,
                                    measure_instance, pigeonhole,
                                    run_throughput_bench, write_report,
                                    _ENGINES, _stress_runner)
from repro.sat import CDCLSolver
from repro.sat.solver.config import minisat_like


def test_bcp_stress_is_propagation_only():
    cnf = bcp_stress(50, 4, 5, seed=3)
    solver = CDCLSolver(cnf, minisat_like())
    result = solver.solve(assumptions=[1])
    assert result.is_sat
    assert solver.stats["conflicts"] == 0
    assert solver.stats["decisions"] == 0
    # The chain assignment propagates every variable from the single
    # assumption, and the fanout clauses are skipped via blockers.
    assert solver.stats["propagations"] >= 50
    assert solver.stats["blocker_hits"] > 0


def test_measure_instance_reports_both_engines():
    record = measure_instance("tiny", bcp_stress(40, 2, 4),
                              runner=_stress_runner, rounds=2, repeats=1)
    assert record["sanity"] == "identical trajectories"
    assert record["arena"]["propagations"] == record["legacy"]["propagations"]
    assert record["arena"]["blocker_hit_rate"] is not None
    assert record["speedup"] is not None


def test_bench_payload_is_valid_json(tmp_path):
    payload = run_throughput_bench(repeats=1, stress_rounds=2,
                                   include_context=False,
                                   include_conflict=False)
    out = tmp_path / "BENCH_solver.json"
    write_report(str(out), payload)
    loaded = json.loads(out.read_text(encoding="utf-8"))
    assert loaded["headline_bcp_speedup"] is not None
    assert loaded["stress_arena_props_per_sec"] > 0
    assert loaded["stress_legacy_props_per_sec"] > 0
    for record in loaded["stress_suite"]:
        assert record["sanity"] == "identical trajectories"
        assert record["arena"]["props_per_sec"] > 0


@pytest.mark.slow
def test_bench_cli_quick(tmp_path, capsys):
    out = tmp_path / "bench.json"
    # --quick caps repeats but still runs the (deliberately hard)
    # conflict-heavy suite, so this is marked slow: it is the CLI
    # coverage for exactly what CI's bench-smoke job executes.
    assert main(["--quick", "-o", str(out)]) == 0
    loaded = json.loads(out.read_text(encoding="utf-8"))
    assert "headline_bcp_speedup" in loaded
    assert "context_suite" in loaded
    assert "conflict_suite" in loaded
    assert "headline_conflict_speedup" in loaded
    assert "headline BCP speedup" in capsys.readouterr().out


def test_all_three_engines_registered():
    assert set(_ENGINES) == {"arena", "legacy", "packed"}


def test_conflict_configs_flags():
    configs = conflict_configs()
    base, tuned = configs["baseline"], configs["tuned"]
    assert not base.inprocessing and base.reduce_policy != "tier"
    assert tuned.inprocessing and tuned.reduce_policy == "tier"
    # Identical search seeds: the race measures the features, not luck.
    assert base.seed == tuned.seed
    assert base.phase_timing and tuned.phase_timing


def test_measure_conflict_instance_shape():
    record = measure_conflict_instance("php", pigeonhole(5), repeats=1)
    assert record["speedup"] is not None
    for label in ("baseline", "tuned"):
        side = record[label]
        assert side["conflicts"] > 0
        assert set(side["phase_split"]) == {"propagate", "analyze",
                                            "reduce", "inprocess"}
    # Inprocessing counters are reported for the tuned side only.
    assert "inprocessing" not in record["baseline"]
    assert record["tuned"]["inprocessing"]["inprocess_passes"] >= 1


def test_check_floor_pass_and_fail(tmp_path):
    floor = tmp_path / "floor.json"
    floor.write_text(json.dumps({
        "_comment": "ignored",
        "headline_bcp_speedup": 2.0,
        "absent_key": 1.0,
    }), encoding="utf-8")
    # 1.6 >= 75% of the 2.0 floor: passes; the missing key fails.
    failures = check_floor({"headline_bcp_speedup": 1.6}, str(floor))
    assert failures == ["absent_key: missing from bench payload"]
    failures = check_floor({"headline_bcp_speedup": 1.4,
                            "absent_key": 5.0}, str(floor))
    assert failures == ["headline_bcp_speedup: 1.4 < 75% of floor 2.0"]
