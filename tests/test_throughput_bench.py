"""Smoke tests for the BCP throughput bench (repro.bench.throughput).

Tier-1 safe: runs the bench at a tiny setting and checks the artifact is
valid JSON with the expected shape — no timing assertions, so the test
cannot flake on a loaded machine.  The real >= 1.5x acceptance assertion
lives in benchmarks/test_bench_solver_throughput.py.
"""

import json

from repro.bench.throughput import (bcp_stress, main, measure_instance,
                                    run_throughput_bench, write_report,
                                    _stress_runner)
from repro.sat import CDCLSolver
from repro.sat.solver.config import minisat_like


def test_bcp_stress_is_propagation_only():
    cnf = bcp_stress(50, 4, 5, seed=3)
    solver = CDCLSolver(cnf, minisat_like())
    result = solver.solve(assumptions=[1])
    assert result.satisfiable
    assert solver.stats["conflicts"] == 0
    assert solver.stats["decisions"] == 0
    # The chain assignment propagates every variable from the single
    # assumption, and the fanout clauses are skipped via blockers.
    assert solver.stats["propagations"] >= 50
    assert solver.stats["blocker_hits"] > 0


def test_measure_instance_reports_both_engines():
    record = measure_instance("tiny", bcp_stress(40, 2, 4),
                              runner=_stress_runner, rounds=2, repeats=1)
    assert record["sanity"] == "identical trajectories"
    assert record["arena"]["propagations"] == record["legacy"]["propagations"]
    assert record["arena"]["blocker_hit_rate"] is not None
    assert record["speedup"] is not None


def test_bench_payload_is_valid_json(tmp_path):
    payload = run_throughput_bench(repeats=1, stress_rounds=2,
                                   include_context=False)
    out = tmp_path / "BENCH_solver.json"
    write_report(str(out), payload)
    loaded = json.loads(out.read_text(encoding="utf-8"))
    assert loaded["headline_bcp_speedup"] is not None
    assert loaded["stress_arena_props_per_sec"] > 0
    assert loaded["stress_legacy_props_per_sec"] > 0
    for record in loaded["stress_suite"]:
        assert record["sanity"] == "identical trajectories"
        assert record["arena"]["props_per_sec"] > 0


def test_bench_cli_quick(tmp_path, capsys):
    out = tmp_path / "bench.json"
    # Keep CLI coverage cheap: --quick already caps repeats, and the
    # stress instances are small enough for a test run.
    assert main(["--quick", "-o", str(out)]) == 0
    loaded = json.loads(out.read_text(encoding="utf-8"))
    assert "headline_bcp_speedup" in loaded
    assert "context_suite" in loaded
    assert "headline BCP speedup" in capsys.readouterr().out
