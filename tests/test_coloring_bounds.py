"""Tests for greedy colorings, clique bounds and the exact oracle."""

import pytest
from hypothesis import given, settings

from repro.coloring import (chromatic_number, clique_lower_bound,
                            complete_graph, cycle_graph, dsatur_coloring,
                            find_coloring, greedy_clique, greedy_coloring,
                            greedy_num_colors, is_colorable, Graph)
from .strategies import small_graphs


class TestGreedyColoring:
    def test_produces_proper_coloring(self, pentagon):
        coloring = greedy_coloring(pentagon)
        for u, v in pentagon.edges():
            assert coloring[u] != coloring[v]

    def test_respects_custom_order(self):
        graph = Graph(3, [(0, 1)])
        coloring = greedy_coloring(graph, order=[2, 1, 0])
        assert set(coloring) == {0, 1, 2}

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            greedy_coloring(Graph(3), order=[0, 1])

    @given(small_graphs())
    def test_always_proper(self, graph):
        coloring = greedy_coloring(graph)
        for u, v in graph.edges():
            assert coloring[u] != coloring[v]


class TestDsatur:
    def test_bipartite_uses_two_colors(self, square):
        assert max(dsatur_coloring(square).values()) + 1 == 2

    def test_complete_graph_uses_n(self):
        assert greedy_num_colors(complete_graph(5)) == 5

    def test_empty_graph(self):
        assert greedy_num_colors(Graph(0)) == 0
        assert greedy_num_colors(Graph(3)) == 1

    @given(small_graphs())
    def test_proper_and_upper_bounds_chromatic(self, graph):
        coloring = dsatur_coloring(graph)
        for u, v in graph.edges():
            assert coloring[u] != coloring[v]
        if graph.num_vertices:
            assert greedy_num_colors(graph) >= chromatic_number(graph)


class TestClique:
    def test_complete_graph(self):
        assert clique_lower_bound(complete_graph(6)) == 6

    def test_cycle(self, pentagon):
        assert clique_lower_bound(pentagon) == 2

    @given(small_graphs())
    def test_clique_is_clique_and_bounds_chromatic(self, graph):
        clique = greedy_clique(graph)
        assert graph.subgraph_is_clique(clique)
        if graph.num_vertices:
            assert len(clique) <= chromatic_number(graph)


class TestExactOracle:
    def test_triangle(self, triangle):
        assert chromatic_number(triangle) == 3
        assert not is_colorable(triangle, 2)
        assert is_colorable(triangle, 3)

    def test_odd_cycle_needs_three(self, pentagon):
        assert chromatic_number(pentagon) == 3

    def test_even_cycle_needs_two(self, square):
        assert chromatic_number(square) == 2

    def test_complete_graph(self):
        assert chromatic_number(complete_graph(5)) == 5

    def test_empty_and_edgeless(self):
        assert chromatic_number(Graph(0)) == 0
        assert chromatic_number(Graph(4)) == 1

    def test_found_coloring_is_proper(self, pentagon):
        coloring = find_coloring(pentagon, 3)
        assert coloring is not None
        for u, v in pentagon.edges():
            assert coloring[u] != coloring[v]

    def test_infeasible_returns_none(self, triangle):
        assert find_coloring(triangle, 2) is None

    def test_refuses_large_graphs(self):
        with pytest.raises(ValueError):
            find_coloring(Graph(20), 2)

    def test_rejects_zero_colors(self, triangle):
        with pytest.raises(ValueError):
            find_coloring(triangle, 0)

    @settings(max_examples=40, deadline=None)
    @given(small_graphs(max_vertices=7))
    def test_monotone_in_colors(self, graph):
        chi = chromatic_number(graph)
        assert not is_colorable(graph, chi - 1) if chi > 1 else True
        assert is_colorable(graph, chi)
        assert is_colorable(graph, chi + 1)
