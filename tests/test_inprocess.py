"""Tests for inter-restart inprocessing (repro.sat.inprocess).

The contract under test, per technique:

* **BVE** keeps the formula equisatisfiable and the solver extends SAT
  models back over eliminated variables, so callers always see a model
  of the *original* CNF.
* **Subsumption / self-subsuming resolution** reaches a fixpoint: a
  second pass over an already-processed database finds nothing new.
* **Vivification** (and every other technique) logs its derivations,
  so UNSAT answers still carry a machine-checkable RUP proof.
* Assumptions over BVE-eliminated variables are rejected loudly — the
  solver no longer tracks them, and guessing would be unsound.
"""

import pytest

from repro.bench.throughput import pigeonhole, random_3sat
from repro.sat import (CNF, CDCLSolver, SolveStatus, solve,
                       verify_rup_proof)
from repro.sat.inprocess import Inprocessor
from repro.sat.solver.config import SolverConfig, minisat_like


def _tuned(**overrides) -> SolverConfig:
    return minisat_like(phase_timing=True, inprocessing=True,
                        reduce_policy="tier", **overrides)


class TestEquisatisfiability:
    """Inprocessing on vs off must agree on every instance, and SAT
    models — after BVE extension — must satisfy the original CNF."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_3sat_agrees_with_baseline(self, seed):
        # 4.3 clauses/var sits near the phase transition, so the batch
        # mixes SAT and UNSAT instances.
        cnf = random_3sat(24, 103, seed=seed)
        base = solve(cnf, minisat_like())
        tuned = solve(cnf, _tuned())
        assert tuned.status is base.status
        if tuned.status is SolveStatus.SAT:
            assert tuned.model.satisfies(cnf)

    def test_model_extends_over_eliminated_variables(self):
        # Variable 1 has one positive and one negative occurrence, so
        # BVE always eliminates it; the reduced formula never mentions
        # it, yet the returned model must still assign it correctly.
        cnf = CNF([(1, 2), (-1, 3), (-2, 4), (-3, 4), (2, 3, 4)])
        solver = CDCLSolver(cnf, _tuned())
        result = solver.solve()
        assert result.status is SolveStatus.SAT
        assert solver._inpro.eliminated_count > 0
        assert result.model.satisfies(cnf)

    def test_pigeonhole_still_unsat(self):
        result = solve(pigeonhole(4), _tuned())
        assert result.status is SolveStatus.UNSAT


class TestSubsumptionIdempotence:
    def test_second_pass_finds_nothing(self):
        # (1,2) subsumes (1,2,3); (1,2) self-subsumes (-1,2,4) to
        # (2,4), which then subsumes (2,4,5).
        cnf = CNF([(1, 2), (1, 2, 3), (-1, 2, 4), (2, 4, 5),
                   (-2, 5), (3, -4, -5), (-3, -5, 6)])
        config = minisat_like(inprocessing=True, inprocess_bve=False,
                              inprocess_vivify=False)
        solver = CDCLSolver(cnf, config)
        Inprocessor(solver).run()
        assert solver.stats["subsumed_clauses"] > 0
        before = (solver.stats["subsumed_clauses"],
                  solver.stats["strengthened_clauses"])
        # A fresh Inprocessor re-runs the full first-pass fixpoint from
        # scratch — on an already-reduced database it must be a no-op.
        Inprocessor(solver).run()
        after = (solver.stats["subsumed_clauses"],
                 solver.stats["strengthened_clauses"])
        assert after == before

    def test_subsumed_formula_still_solves(self):
        cnf = CNF([(1, 2), (1, 2, 3), (-1, 2, 4), (-2, -4), (-2, 4, -1)])
        base = solve(cnf, minisat_like())
        tuned = solve(cnf, _tuned())
        assert tuned.status is base.status
        if tuned.status is SolveStatus.SAT:
            assert tuned.model.satisfies(cnf)


class TestProofLogging:
    """Every inprocessing derivation lands in the DRUP log, so UNSAT
    proofs replay through the independent RUP checker."""

    @pytest.mark.parametrize("seed", range(4))
    def test_unsat_proofs_verify_with_inprocessing(self, seed):
        cnf = random_3sat(16, 110, seed=seed)  # well past the threshold
        solver = CDCLSolver(cnf, _tuned(proof_log=True))
        result = solver.solve()
        assert result.status is SolveStatus.UNSAT
        assert solver.stats["inprocess_passes"] >= 1
        check = verify_rup_proof(cnf, solver.proof)
        assert check.ok, check.error

    def test_pigeonhole_proof_verifies_with_inprocessing(self):
        cnf = pigeonhole(4)
        solver = CDCLSolver(cnf, _tuned(proof_log=True))
        assert solver.solve().status is SolveStatus.UNSAT
        check = verify_rup_proof(cnf, solver.proof)
        assert check.ok, check.error


class TestEliminatedAssumptions:
    def test_assuming_an_eliminated_variable_raises(self):
        cnf = CNF([(1, 2), (-1, 3), (-2, 4), (-3, 4), (2, 3, 4)])
        solver = CDCLSolver(cnf, _tuned())
        assert solver.solve().status is SolveStatus.SAT
        eliminated = [var for var in range(1, cnf.num_vars + 1)
                      if solver._eliminated[var]]
        assert eliminated
        with pytest.raises(ValueError, match="eliminated"):
            solver.solve(assumptions=[eliminated[0]])

    def test_frozen_assumptions_are_never_eliminated(self):
        cnf = CNF([(1, 2), (-1, 3), (-2, 4), (-3, 4), (2, 3, 4)])
        solver = CDCLSolver(cnf, _tuned())
        # Assumed on the *first* call: var 1 is frozen, stays in the
        # formula, and the call succeeds.
        result = solver.solve(assumptions=[1])
        assert result.status is SolveStatus.SAT
        assert not solver._eliminated[1]
        assert result.model.value(1) is True
