"""Tests for the benchmark harness (tables and sweeps)."""

import pytest

from repro.bench import (format_seconds, format_speedup,
                         prepare_routable_instance,
                         prepare_unroutable_instance, render_simple_table,
                         render_table, sweep)
from repro.core import Strategy


class TestFormatting:
    def test_seconds(self):
        assert format_seconds(0.034) == "0.03"
        assert format_seconds(12.5) == "12.50"
        assert format_seconds(123.4) == "123.4"
        assert format_seconds(1531524) == "1,531,524"

    def test_speedup(self):
        assert format_speedup(1.0) == "1.00x"
        assert format_speedup(24.91) == "24.9x"
        assert format_speedup(1139) == "1,139x"


class TestRenderTable:
    def test_structure(self):
        cells = {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0, "y": 1.0}}
        text = render_table("T", ["a", "b"], ["x", "y"], cells,
                            reference_column="x")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Benchmark" in lines[2]
        assert any(line.startswith("Total") for line in lines)
        assert any(line.startswith("Speedup") for line in lines)

    def test_minimum_marked(self):
        cells = {"a": {"x": 5.0, "y": 1.0}}
        text = render_table("T", ["a"], ["x", "y"], cells)
        row = [l for l in text.splitlines() if l.startswith("a")][0]
        assert "*1.00" in row
        assert "*5.00" not in row

    def test_speedup_row_values(self):
        cells = {"a": {"x": 10.0, "y": 1.0}}
        text = render_table("T", ["a"], ["x", "y"], cells,
                            reference_column="x")
        speedup_row = [l for l in text.splitlines()
                       if l.startswith("Speedup")][0]
        assert "10.0x" in speedup_row
        assert "1.00x" in speedup_row

    def test_missing_cell_rejected(self):
        with pytest.raises(ValueError):
            render_table("T", ["a"], ["x"], {"a": {}})

    def test_unknown_reference_rejected(self):
        cells = {"a": {"x": 1.0}}
        with pytest.raises(ValueError):
            render_table("T", ["a"], ["x"], cells, reference_column="z")

    def test_simple_table(self):
        text = render_simple_table("S", ["col1", "col2"],
                                   [["v1", "v2"], ["w1", "w2"]])
        assert "col1" in text and "w2" in text

    def test_simple_table_bad_row(self):
        with pytest.raises(ValueError):
            render_simple_table("S", ["a"], [["1", "2"]])


@pytest.fixture(scope="module")
def tiny_unroutable():
    return prepare_unroutable_instance("alu2", scale=0.7)


class TestPreparation:
    def test_unroutable_instance(self, tiny_unroutable):
        from repro.fpga import detailed_route
        result = detailed_route(tiny_unroutable.routing,
                                tiny_unroutable.width,
                                Strategy("ITE-log", "s1"))
        assert not result.routable

    def test_routable_instance(self):
        instance = prepare_routable_instance("alu2", scale=0.7)
        from repro.fpga import detailed_route
        result = detailed_route(instance.routing, instance.width,
                                Strategy("ITE-log", "s1"))
        assert result.routable


class TestSweep:
    def test_times_every_cell(self, tiny_unroutable):
        strategies = [Strategy("muldirect"), Strategy("ITE-log", "s1")]
        result = sweep([tiny_unroutable], strategies,
                       expect_satisfiable=False)
        assert set(result.totals()) == {"muldirect", "ITE-log/s1"}
        cells = result.time_cells()
        assert cells["alu2"]["muldirect"] > 0

    def test_expectation_mismatch_raises(self, tiny_unroutable):
        with pytest.raises(AssertionError):
            sweep([tiny_unroutable], [Strategy("muldirect")],
                  expect_satisfiable=True)

    def test_strategy_times_usable_for_portfolio(self, tiny_unroutable):
        from repro.core import portfolio_speedup
        strategies = [Strategy("muldirect", "s1"), Strategy("ITE-log", "s1")]
        result = sweep([tiny_unroutable], strategies)
        speedup = portfolio_speedup(result.strategy_times(), strategies,
                                    strategies[0])
        assert speedup >= 1.0

    def test_repeats_validated(self, tiny_unroutable):
        with pytest.raises(ValueError):
            sweep([tiny_unroutable], [Strategy("muldirect")], repeats=0)

    def test_json_export(self, tiny_unroutable):
        import json
        result = sweep([tiny_unroutable], [Strategy("ITE-log", "s1")])
        payload = json.loads(result.to_json())
        assert payload["instances"] == ["alu2"]
        cell = payload["cells"]["alu2|ITE-log/s1"]
        assert cell["satisfiable"] is False
        assert cell["num_vars"] > 0
        assert cell["conflicts"] >= 0
