"""Unit tests for DIMACS literal helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.sat.literals import (code_to_lit, is_positive, lit_to_code,
                                max_var, negate, var_of)

nonzero_lits = st.integers(min_value=1, max_value=10**6).flatmap(
    lambda v: st.sampled_from([v, -v]))


class TestVarOf:
    def test_positive(self):
        assert var_of(5) == 5

    def test_negative(self):
        assert var_of(-7) == 7

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            var_of(0)


class TestNegate:
    def test_round_trip(self):
        assert negate(negate(3)) == 3

    def test_sign_flip(self):
        assert negate(4) == -4
        assert negate(-4) == 4

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            negate(0)


class TestIsPositive:
    def test_polarity(self):
        assert is_positive(1)
        assert not is_positive(-1)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            is_positive(0)


class TestCodes:
    def test_known_values(self):
        assert lit_to_code(1) == 2
        assert lit_to_code(-1) == 3
        assert lit_to_code(2) == 4
        assert lit_to_code(-2) == 5

    def test_negation_is_xor(self):
        for lit in (1, -1, 9, -9, 100):
            assert lit_to_code(negate(lit)) == lit_to_code(lit) ^ 1

    @given(nonzero_lits)
    def test_round_trip(self, lit):
        assert code_to_lit(lit_to_code(lit)) == lit

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            lit_to_code(0)

    def test_bad_code_rejected(self):
        with pytest.raises(ValueError):
            code_to_lit(1)


class TestMaxVar:
    def test_empty(self):
        assert max_var([]) == 0

    def test_mixed(self):
        assert max_var([3, -7, 2]) == 7
