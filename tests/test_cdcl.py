"""CDCL solver tests: crafted instances, budgets, and oracle cross-checks."""

import pytest
from hypothesis import given, settings

from repro.sat import (CNF, BudgetExceeded, CDCLSolver, SolverConfig,
                       minisat_like, siege_like, solve, solve_by_enumeration)
from .strategies import make_random_cnf, small_cnfs


def pigeonhole(holes: int) -> CNF:
    """PHP(holes+1, holes): classic UNSAT family, hard for resolution."""
    cnf = CNF()
    var = {}
    for pigeon in range(holes + 1):
        for hole in range(holes):
            var[(pigeon, hole)] = cnf.new_var()
    for pigeon in range(holes + 1):
        cnf.add_clause([var[(pigeon, hole)] for hole in range(holes)])
    for hole in range(holes):
        for a in range(holes + 1):
            for b in range(a + 1, holes + 1):
                cnf.add_clause([-var[(a, hole)], -var[(b, hole)]])
    return cnf


class TestTrivialCases:
    def test_empty_formula_is_sat(self):
        result = solve(CNF())
        assert result.is_sat

    def test_empty_clause_is_unsat(self):
        assert not solve(CNF([[]]))

    def test_single_unit(self):
        result = solve(CNF([[1]]))
        assert result.is_sat
        assert result.model.value(1) is True

    def test_contradictory_units(self):
        assert not solve(CNF([[1], [-1]]))

    def test_unit_propagation_chain(self):
        cnf = CNF([[1], [-1, 2], [-2, 3], [-3, 4]])
        result = solve(cnf)
        assert result.is_sat
        assert all(result.model.value(v) for v in (1, 2, 3, 4))

    def test_propagation_conflict_at_root(self):
        assert not solve(CNF([[1], [-1, 2], [-2], ]))

    def test_tautology_ignored(self):
        result = solve(CNF([[1, -1]]))
        assert result.is_sat

    def test_duplicate_literals_tolerated(self):
        result = solve(CNF([[1, 1, 2], [-1, -1]]))
        assert result.is_sat
        assert result.model.value(1) is False

    def test_unconstrained_vars_get_values(self):
        cnf = CNF([[1]], num_vars=5)
        result = solve(cnf)
        assert result.is_sat
        assert result.model.num_vars == 5
        assert result.model.satisfies(cnf)


class TestSearch:
    def test_forces_backtracking(self):
        # XOR-ish chains that defeat pure unit propagation.
        cnf = CNF([[1, 2], [-1, -2], [2, 3], [-2, -3], [1, 3]])
        result = solve(cnf)
        assert result.is_sat
        assert result.model.satisfies(cnf)

    @pytest.mark.parametrize("holes", [2, 3, 4, 5, 6])
    def test_pigeonhole_unsat(self, holes):
        assert not solve(pigeonhole(holes))

    def test_pigeonhole_sat_when_enough_holes(self):
        # PHP with as many holes as pigeons is satisfiable.
        cnf = CNF()
        var = {}
        n = 4
        for pigeon in range(n):
            for hole in range(n):
                var[(pigeon, hole)] = cnf.new_var()
        for pigeon in range(n):
            cnf.add_clause([var[(pigeon, hole)] for hole in range(n)])
        for hole in range(n):
            for a in range(n):
                for b in range(a + 1, n):
                    cnf.add_clause([-var[(a, hole)], -var[(b, hole)]])
        result = solve(cnf)
        assert result.is_sat
        assert result.model.satisfies(cnf)

    def test_learning_happens(self):
        solver = CDCLSolver(pigeonhole(4))
        assert not solver.solve().is_sat
        assert solver.stats["conflicts"] > 0
        assert solver.stats["learned_clauses"] > 0

    def test_restarts_happen_on_hard_instance(self):
        solver = CDCLSolver(pigeonhole(6),
                            minisat_like(restart_base=10))
        assert not solver.solve().is_sat
        assert solver.stats["restarts"] > 0


class TestConfigurations:
    @pytest.mark.parametrize("config_factory", [minisat_like, siege_like])
    def test_presets_agree(self, config_factory):
        for seed in range(10):
            cnf = make_random_cnf(8, 30, seed)
            expected = solve_by_enumeration(cnf).is_sat
            result = solve(cnf, config_factory(seed=seed))
            assert result.is_sat == expected
            if expected:
                assert result.model.satisfies(cnf)

    def test_geometric_restarts(self):
        config = SolverConfig(restart_policy="geometric", restart_base=5,
                              restart_factor=1.1)
        solver = CDCLSolver(pigeonhole(5), config)
        assert not solver.solve().is_sat
        assert solver.stats["restarts"] > 0

    def test_random_phase(self):
        config = SolverConfig(default_phase="random", seed=3)
        cnf = make_random_cnf(10, 25, seed=5)
        expected = solve_by_enumeration(cnf).is_sat
        assert solve(cnf, config).is_sat == expected

    def test_true_phase(self):
        result = solve(CNF([[1, 2]], num_vars=2),
                       SolverConfig(default_phase="true"))
        assert result.is_sat

    def test_deterministic_given_seed(self):
        cnf = pigeonhole(5)
        first = CDCLSolver(cnf.copy(), siege_like(seed=1))
        second = CDCLSolver(cnf.copy(), siege_like(seed=1))
        first.solve()
        second.solve()
        assert first.stats["conflicts"] == second.stats["conflicts"]
        assert first.stats["decisions"] == second.stats["decisions"]

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(restart_policy="fixed")
        with pytest.raises(ValueError):
            SolverConfig(default_phase="maybe")
        with pytest.raises(ValueError):
            SolverConfig(random_decision_freq=1.5)
        with pytest.raises(ValueError):
            SolverConfig(var_decay=0.0)


class TestBudgets:
    def test_conflict_budget(self):
        config = SolverConfig(max_conflicts=5)
        with pytest.raises(BudgetExceeded):
            CDCLSolver(pigeonhole(6), config).solve()

    def test_decision_budget(self):
        config = SolverConfig(max_decisions=3)
        with pytest.raises(BudgetExceeded):
            CDCLSolver(pigeonhole(6), config).solve()

    def test_budget_not_hit_on_easy_instance(self):
        config = SolverConfig(max_conflicts=1000)
        result = CDCLSolver(CNF([[1], [2]]), config).solve()
        assert result.is_sat


class TestClauseDatabase:
    def test_reduce_db_preserves_correctness(self):
        # A tiny learned-clause limit forces frequent DB reductions.
        config = SolverConfig(max_learnts_factor=0.01,
                              max_learnts_growth=1.0)
        solver = CDCLSolver(pigeonhole(6), config)
        assert not solver.solve().is_sat
        assert solver.stats["deleted_clauses"] > 0

    def test_minimization_counts(self):
        solver = CDCLSolver(pigeonhole(5))
        solver.solve()
        # Local minimisation should fire at least once on PHP.
        assert solver.stats["minimized_literals"] >= 0

    @pytest.mark.parametrize("policy", ["activity", "tier"])
    def test_reduce_db_never_deletes_a_trail_reason(self, policy):
        # Regression guard: deleting a clause that is the reason for a
        # trail literal leaves ``_reason`` dangling and corrupts the
        # next conflict analysis.  ``_protected_refs`` must shield
        # reasons from *every* deletion path, under both policies.
        class ReasonChecked(CDCLSolver):
            def _delete_clause(self, ref):
                live = {self._reason[code >> 1] for code in self._trail}
                assert ref not in live, \
                    f"deleted ref {ref} is a live trail reason"
                CDCLSolver._delete_clause(self, ref)

        config = SolverConfig(max_learnts_factor=0.01,
                              max_learnts_growth=1.0,
                              reduce_policy=policy)
        solver = ReasonChecked(pigeonhole(6), config)
        assert not solver.solve().is_sat
        assert solver.stats["deleted_clauses"] > 0

    def test_protected_refs_tracks_trail_reasons(self):
        solver = CDCLSolver(pigeonhole(4))
        solver.solve()
        # At a root-level fixpoint the trail holds only decisions-free
        # propagations; every non-(-1) reason must be reported.
        expected = {solver._reason[code >> 1] for code in solver._trail}
        expected.discard(-1)
        assert solver._protected_refs() == expected


class TestOracleCrossCheck:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_instances(self, seed):
        cnf = make_random_cnf(num_vars=9, num_clauses=30, seed=seed)
        expected = solve_by_enumeration(cnf).is_sat
        result = solve(cnf)
        assert result.is_sat == expected
        if expected:
            assert result.model.satisfies(cnf)

    @settings(max_examples=60, deadline=None)
    @given(small_cnfs())
    def test_property_matches_enumeration(self, cnf):
        expected = solve_by_enumeration(cnf).is_sat
        result = solve(cnf)
        assert result.is_sat == expected
        if expected:
            assert result.model.satisfies(cnf)
