"""Unit and property tests for the CNF container and DIMACS CNF I/O."""

import pytest
from hypothesis import given

from repro.sat import CNF, parse_dimacs_string
from .strategies import small_cnfs


class TestConstruction:
    def test_empty(self):
        cnf = CNF()
        assert cnf.num_vars == 0
        assert cnf.num_clauses == 0
        assert len(cnf) == 0

    def test_initial_clauses(self):
        cnf = CNF([[1, -2], [3]])
        assert cnf.num_vars == 3
        assert cnf.num_clauses == 2
        assert list(cnf) == [(1, -2), (3,)]

    def test_explicit_num_vars(self):
        cnf = CNF(num_vars=10)
        assert cnf.num_vars == 10

    def test_negative_num_vars_rejected(self):
        with pytest.raises(ValueError):
            CNF(num_vars=-1)

    def test_num_vars_grows_with_clauses(self):
        cnf = CNF(num_vars=2)
        cnf.add_clause([5, -1])
        assert cnf.num_vars == 5

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([1, 0, 2])

    def test_empty_clause_allowed(self):
        cnf = CNF()
        cnf.add_clause([])
        assert cnf.clauses == [()]

    def test_new_var(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_new_vars(self):
        cnf = CNF(num_vars=3)
        assert cnf.new_vars(3) == [4, 5, 6]
        assert cnf.new_vars(0) == []
        with pytest.raises(ValueError):
            cnf.new_vars(-1)

    def test_reserve(self):
        cnf = CNF(num_vars=3)
        cnf.reserve(7)
        assert cnf.num_vars == 7
        cnf.reserve(2)  # never shrinks
        assert cnf.num_vars == 7

    def test_extend(self):
        cnf = CNF()
        cnf.extend([[1], [2, 3]])
        assert cnf.num_clauses == 2

    def test_copy_is_independent(self):
        original = CNF([[1, 2]])
        duplicate = original.copy()
        duplicate.add_clause([3])
        assert original.num_clauses == 1
        assert duplicate.num_clauses == 2


class TestDimacs:
    def test_serialise(self):
        cnf = CNF([[1, -2], [2, 3]])
        text = cnf.to_dimacs(comments=["hello"])
        assert text == "c hello\np cnf 3 2\n1 -2 0\n2 3 0\n"

    def test_parse(self):
        cnf = parse_dimacs_string("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n")
        assert cnf.num_vars == 3
        assert list(cnf) == [(1, -2), (2, 3)]

    def test_parse_multiline_clause(self):
        cnf = parse_dimacs_string("p cnf 3 1\n1\n-2\n3 0\n")
        assert list(cnf) == [(1, -2, 3)]

    def test_parse_unterminated_final_clause(self):
        cnf = parse_dimacs_string("p cnf 2 1\n1 2\n")
        assert list(cnf) == [(1, 2)]

    def test_parse_honours_declared_vars(self):
        cnf = parse_dimacs_string("p cnf 9 1\n1 0\n")
        assert cnf.num_vars == 9

    def test_parse_percent_terminator(self):
        cnf = parse_dimacs_string("p cnf 2 1\n1 2 0\n%\n0\n")
        assert cnf.num_clauses == 1

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError):
            parse_dimacs_string("p sat 3 2\n")

    def test_file_round_trip(self, tmp_path):
        cnf = CNF([[1, -3], [2]])
        path = str(tmp_path / "f.cnf")
        cnf.write_dimacs_file(path, comments=["x"])
        from repro.sat import parse_dimacs_file
        parsed = parse_dimacs_file(path)
        assert list(parsed) == list(cnf)
        assert parsed.num_vars == cnf.num_vars

    @given(small_cnfs())
    def test_round_trip_property(self, cnf):
        parsed = parse_dimacs_string(cnf.to_dimacs())
        assert list(parsed) == list(cnf)
        assert parsed.num_vars == cnf.num_vars
