"""Tests for the Luby restart sequence."""

import pytest

from repro.sat.solver import luby, luby_prefix


class TestLuby:
    def test_known_prefix(self):
        assert luby_prefix(15) == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_powers_at_boundaries(self):
        # Element 2^k - 1 is 2^(k-1).
        for k in range(1, 8):
            assert luby(2 ** k - 1) == 2 ** (k - 1)

    def test_self_similarity(self):
        # After position 2^k - 1 the sequence restarts.
        prefix = luby_prefix(63)
        assert prefix[31:62] == prefix[:31]

    def test_one_based(self):
        with pytest.raises(ValueError):
            luby(0)

    def test_all_values_are_powers_of_two(self):
        for value in luby_prefix(100):
            assert value & (value - 1) == 0
