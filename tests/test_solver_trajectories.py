"""Trajectory regression suite: the arena rewrite must not move the search.

``tests/fixtures/solver_trajectories.json`` pins the
``(answer, decisions, conflicts)`` triple of the *pre-arena* seed solver
on seeded random CNFs, pigeonhole formulas and two FPGA routing
instances, under both solver presets.  Both current engines — the flat
clause-arena engine and the retained legacy engine — must reproduce
every pinned triple exactly: the arena is a storage/propagation-speed
change only, and any drift in decision or conflict counts means the
search trajectory silently changed.
"""

import json
from pathlib import Path

import pytest

from repro.bench.throughput import pigeonhole, random_3sat
from repro.sat import CNF, CDCLSolver, LegacyCDCLSolver, PackedCDCLSolver
from repro.sat.solver.config import preset

FIXTURES = json.loads(
    (Path(__file__).parent / "fixtures" / "solver_trajectories.json")
    .read_text(encoding="utf-8"))

PRESETS = ("minisat_like", "siege_like")
ENGINES = {"arena": CDCLSolver, "legacy": LegacyCDCLSolver}

# name -> CNF builder, mirroring exactly how the fixtures were generated.
RANDOM_SPECS = {
    f"3sat-{nv}v-{nc}c-s{seed}": (nv, nc, seed)
    for nv, nc, seed in [(40, 160, 0), (40, 170, 1), (60, 250, 2),
                         (60, 258, 3), (80, 335, 4), (80, 344, 5)]
}


def _triple(cnf: CNF, engine: str, preset_name: str):
    solver = ENGINES[engine](cnf.copy(), preset(preset_name))
    result = solver.solve()
    return [bool(result.is_sat), int(solver.stats["decisions"]),
            int(solver.stats["conflicts"])]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", RANDOM_SPECS)
def test_random_cnf_trajectories(name, engine):
    nv, nc, seed = RANDOM_SPECS[name]
    cnf = random_3sat(nv, nc, seed)
    for preset_name in PRESETS:
        assert _triple(cnf, engine, preset_name) \
            == FIXTURES["random"][name][preset_name], \
            f"{engine}/{preset_name} diverged from the seed solver on {name}"


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("holes", [5, 6])
def test_pigeonhole_trajectories(holes, engine):
    cnf = pigeonhole(holes)
    for preset_name in PRESETS:
        assert _triple(cnf, engine, preset_name) \
            == FIXTURES["pigeonhole"][f"php-{holes}"][preset_name]


@pytest.fixture(scope="module")
def routing_cnfs():
    """The two pinned routing instances (SAT at W=8, UNSAT at W=7)."""
    from repro.core import get_encoding
    from repro.core.symmetry import apply_symmetry
    from repro.fpga import build_routing_csp, load_routing

    routing = load_routing("alu2", scale=0.7)
    cnfs = {}
    for width in (8, 7):
        problem = build_routing_csp(routing, width).problem
        encoded = get_encoding("ITE-linear-2+muldirect").encode(problem)
        apply_symmetry(encoded, "s1")
        cnfs[f"alu2-w{width}"] = encoded.cnf
    return cnfs


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", ["alu2-w8", "alu2-w7"])
def test_routing_trajectories(routing_cnfs, name, engine):
    for preset_name in PRESETS:
        assert _triple(routing_cnfs[name], engine, preset_name) \
            == FIXTURES["routing"][name][preset_name]


@pytest.fixture(scope="module")
def modern_routing_cnfs():
    """The same two routing instances under the new-family strategies:
    the partial-order POP and the commander-AMO direct encoding, both
    with s1 symmetry breaking (one aux-var family, one threshold
    family — pinning their trajectories guards the new structural
    clauses against silent drift)."""
    from repro.core import get_encoding
    from repro.core.symmetry import apply_symmetry
    from repro.fpga import build_routing_csp, load_routing

    routing = load_routing("alu2", scale=0.7)
    cnfs = {}
    for encoding in ("pop", "cmddirect"):
        for width in (8, 7):
            problem = build_routing_csp(routing, width).problem
            encoded = get_encoding(encoding).encode(problem)
            apply_symmetry(encoded, "s1")
            cnfs[f"alu2-w{width}-{encoding}"] = encoded.cnf
    return cnfs


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", ["alu2-w8-pop", "alu2-w7-pop",
                                  "alu2-w8-cmddirect", "alu2-w7-cmddirect"])
def test_modern_encoding_trajectories(modern_routing_cnfs, name, engine):
    for preset_name in PRESETS:
        assert _triple(modern_routing_cnfs[name], engine, preset_name) \
            == FIXTURES["modern"][name][preset_name], \
            f"{engine}/{preset_name} drifted on {name}"


class TestPackedTrajectories:
    """The packed engine keeps MiniSat-style *stale* inline blockers,
    so its search trajectory legitimately differs from arena/legacy —
    it gets its own pinned fixtures instead of sharing theirs.  What
    must hold unconditionally: determinism (same seed, same run) and
    answer agreement with the arena engine."""

    @pytest.mark.parametrize("name", RANDOM_SPECS)
    def test_random_cnf_trajectories(self, name):
        nv, nc, seed = RANDOM_SPECS[name]
        cnf = random_3sat(nv, nc, seed)
        for preset_name in PRESETS:
            solver = PackedCDCLSolver(cnf.copy(), preset(preset_name))
            result = solver.solve()
            triple = [bool(result.is_sat),
                      int(solver.stats["decisions"]),
                      int(solver.stats["conflicts"])]
            assert triple == FIXTURES["packed"]["random"][name][preset_name]

    @pytest.mark.parametrize("holes", [5, 6])
    def test_pigeonhole_trajectories(self, holes):
        cnf = pigeonhole(holes)
        for preset_name in PRESETS:
            solver = PackedCDCLSolver(cnf.copy(), preset(preset_name))
            result = solver.solve()
            triple = [bool(result.is_sat),
                      int(solver.stats["decisions"]),
                      int(solver.stats["conflicts"])]
            assert triple \
                == FIXTURES["packed"]["pigeonhole"][f"php-{holes}"][preset_name]

    def test_packed_is_deterministic(self):
        cnf = random_3sat(60, 250, 2)
        runs = []
        for _ in range(2):
            solver = PackedCDCLSolver(cnf.copy(), preset("minisat_like"))
            solver.solve()
            runs.append({key: solver.stats[key]
                         for key in ("decisions", "conflicts",
                                     "propagations", "watch_inspections",
                                     "learned_clauses", "restarts")})
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("name", RANDOM_SPECS)
    def test_packed_agrees_with_arena(self, name):
        nv, nc, seed = RANDOM_SPECS[name]
        cnf = random_3sat(nv, nc, seed)
        arena = CDCLSolver(cnf.copy(), preset("minisat_like")).solve()
        packed_solver = PackedCDCLSolver(cnf.copy(), preset("minisat_like"))
        packed = packed_solver.solve()
        assert packed.is_sat == arena.is_sat
        if packed.is_sat:
            assert packed.model.satisfies(cnf)


@pytest.mark.parametrize("preset_name", PRESETS)
def test_engines_agree_on_propagation_counts(preset_name):
    """Beyond the pinned triples: propagation counts match too."""
    cnf = random_3sat(60, 250, 2)
    stats = {}
    for engine, cls in ENGINES.items():
        solver = cls(cnf.copy(), preset(preset_name))
        solver.solve()
        stats[engine] = solver.stats
    for key in ("decisions", "conflicts", "propagations",
                "learned_clauses", "restarts"):
        assert stats["arena"][key] == stats["legacy"][key]
