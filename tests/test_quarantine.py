"""Edge cases for repro.reliability.quarantine.

The chaos suite exercises quarantine end to end through the batch
runner; these tests pin the tracker's own arithmetic — the backoff cap
boundary, reset-after-success semantics, and the requeue ordering that
emerges when several strategies fail in an interleaved sequence.
"""

import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.reliability.quarantine import (QuarantinePolicy,
                                          QuarantineTracker)


class TestBackoffCap:
    def test_exponential_growth_hits_the_cap_exactly(self):
        policy = QuarantinePolicy(threshold=1, base_backoff=1.0,
                                  backoff_factor=2.0, max_backoff=4.0)
        # 1, 2, 4 — the third offence lands exactly on the cap, and
        # every later offence stays pinned there.
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 2.0
        assert policy.backoff(3) == 4.0
        assert policy.backoff(4) == 4.0
        assert policy.backoff(100) == 4.0

    def test_cap_below_base_clamps_the_first_period(self):
        policy = QuarantinePolicy(threshold=1, base_backoff=5.0,
                                  backoff_factor=2.0, max_backoff=2.0)
        assert policy.backoff(1) == 2.0

    def test_under_threshold_is_free(self):
        policy = QuarantinePolicy(threshold=3, base_backoff=1.0)
        assert policy.backoff(1) == 0.0
        assert policy.backoff(2) == 0.0
        assert policy.backoff(3) == 1.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            QuarantinePolicy(threshold=0)
        with pytest.raises(ValueError):
            QuarantinePolicy(base_backoff=-1.0)
        with pytest.raises(ValueError):
            QuarantinePolicy(backoff_factor=0.5)


class TestResetAfterSuccess:
    def test_success_resets_consecutive_but_not_totals(self):
        tracker = QuarantineTracker(QuarantinePolicy(
            threshold=1, base_backoff=1.0, backoff_factor=2.0))
        tracker.record_offence("direct", "crash", now=0.0)
        tracker.record_offence("direct", "crash", now=0.0)
        record = tracker.health("direct")
        assert record.offences == 2
        assert tracker.quarantined("direct", now=0.5)

        tracker.record_success("direct")
        assert record.offences == 0
        assert record.total_offences == 2        # history survives
        assert record.successes == 1
        assert record.quarantined_until == 0.0   # released immediately
        assert not tracker.quarantined("direct", now=0.5)

    def test_backoff_restarts_from_base_after_a_reset(self):
        tracker = QuarantineTracker(QuarantinePolicy(
            threshold=1, base_backoff=1.0, backoff_factor=2.0))
        assert tracker.record_offence("direct", "crash", now=0.0) == 1.0
        assert tracker.record_offence("direct", "crash", now=0.0) == 2.0
        tracker.record_success("direct")
        # The streak is broken: the next offence is a *first* offence.
        assert tracker.record_offence("direct", "crash", now=10.0) == 1.0

    def test_success_on_a_clean_record_is_not_an_event(self):
        trace.tracer().reset()
        trace.enable()
        tracker = QuarantineTracker()
        tracker.record_success("direct")         # nothing to reset
        assert trace.tracer().drain_spans() == []
        trace.tracer().reset()


class TestRequeueOrdering:
    def test_interleaved_failures_order_release_times(self):
        """Three strategies fail in an interleaved sequence; the order
        they become runnable again must follow offence count and time,
        which is what the batch runner's not-before requeue sorts on."""
        policy = QuarantinePolicy(threshold=1, base_backoff=1.0,
                                  backoff_factor=2.0, max_backoff=30.0)
        tracker = QuarantineTracker(policy)
        tracker.record_offence("a", "crash", now=0.0)   # until 1.0
        tracker.record_offence("b", "crash", now=0.0)   # until 1.0
        tracker.record_offence("a", "audit", now=0.5)   # until 2.5
        tracker.record_offence("c", "crash", now=0.6)   # until 1.6
        tracker.record_offence("b", "crash", now=1.0)   # until 3.0

        order = sorted("abc", key=tracker.release_time)
        assert order == ["c", "a", "b"]
        assert tracker.release_time("a") == pytest.approx(2.5)
        assert tracker.release_time("b") == pytest.approx(3.0)
        assert tracker.release_time("c") == pytest.approx(1.6)
        # Everyone is out at 1.2 except c's near release at 1.6.
        assert tracker.quarantined("a", now=1.2)
        assert tracker.quarantined("b", now=1.2)
        assert tracker.quarantined("c", now=1.2)
        assert not tracker.quarantined("c", now=1.7)
        assert not tracker.quarantined("b", now=3.0)    # boundary: >=

    def test_overlapping_offence_never_shortens_quarantine(self):
        """An offence recorded at an *earlier* now (stale worker report
        arriving late) must not pull the release time backwards."""
        tracker = QuarantineTracker(QuarantinePolicy(
            threshold=1, base_backoff=10.0, backoff_factor=1.0))
        tracker.record_offence("a", "crash", now=5.0)   # until 15.0
        tracker.record_offence("a", "crash", now=0.0)   # 10.0 < 15.0
        assert tracker.release_time("a") == pytest.approx(15.0)

    def test_unknown_strategy_is_never_quarantined(self):
        tracker = QuarantineTracker()
        assert not tracker.quarantined("never-seen", now=100.0)
        assert tracker.release_time("never-seen") == 0.0


class TestObservabilityHooks:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        obs.reset()
        yield
        obs.reset()

    def test_offence_and_reset_emit_events_and_counters(self):
        trace.enable()
        obs_metrics.enable()
        tracker = QuarantineTracker(QuarantinePolicy(
            threshold=1, base_backoff=2.0))
        tracker.record_offence("direct", "audit-fail", now=0.0)
        tracker.record_success("direct")
        events = trace.tracer().drain_spans()
        names = [r["name"] for r in events]
        assert names == ["quarantine.offence", "quarantine.entered",
                         "quarantine.reset"]
        entered = events[1]["attrs"]
        assert entered["label"] == "direct" and entered["backoff"] == 2.0
        snap = obs_metrics.registry().snapshot()
        assert snap["counters"]["quarantine.offences"] == 1
        assert snap["counters"]["quarantine.entered"] == 1
        assert snap["counters"]["quarantine.resets"] == 1
        assert snap["histograms"]["quarantine.backoff"]["max"] == 2.0

    def test_disabled_tracker_records_no_telemetry(self):
        tracker = QuarantineTracker()
        tracker.record_offence("direct", "crash", now=0.0)
        tracker.record_success("direct")
        assert trace.tracer().drain_spans() == []
        assert obs_metrics.registry().empty
