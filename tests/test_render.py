"""Tests for ASCII rendering."""

import pytest

from repro.fpga import (Net, Netlist, render_congestion, render_route,
                        render_track_histogram, route_netlist)


@pytest.fixture
def routing():
    return route_netlist(Netlist("t", 3, 2, [
        Net("a", (0, 0), ((2, 0),)),
        Net("b", (0, 1), ((2, 1),)),
    ]), congestion_penalty=0.0)


class TestCongestion:
    def test_contains_header_and_blocks(self, routing):
        text = render_congestion(routing)
        assert "3x2 array" in text
        assert "[]" in text
        assert "peak segment usage" in text

    def test_hot_segments_rendered_as_counts(self, routing):
        text = render_congestion(routing)
        assert "1" in text  # at least one used segment

    def test_highlight_marks_route(self, routing):
        text = render_congestion(routing, highlight=0)
        assert "*" in text

    def test_highlight_range_checked(self, routing):
        with pytest.raises(ValueError):
            render_congestion(routing, highlight=99)

    def test_line_count_matches_grid(self, routing):
        body = render_congestion(routing).splitlines()[1:]
        # rows+1 channel lines + rows block lines
        assert len(body) == (2 + 1) + 2


class TestRoute:
    def test_describes_endpoints_and_segments(self, routing):
        text = render_route(routing, 0)
        assert "net0.0" in text
        assert "(0, 0)" in text and "(2, 0)" in text
        assert "->" in text or "via" in text

    def test_range_checked(self, routing):
        with pytest.raises(ValueError):
            render_route(routing, 5)


class TestHistogram:
    def test_flags_over_budget(self, routing):
        usage = routing.segment_usage()
        text = render_track_histogram(usage, width=0)
        assert "over budget" in text

    def test_within_budget(self, routing):
        usage = routing.segment_usage()
        text = render_track_histogram(usage, width=9)
        assert "over budget" not in text
        assert "#" in text
