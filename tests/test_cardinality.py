"""Property tests for the cardinality library (``repro.core.encodings
.cardinality``).

Every at-most-one / at-most-k builder is checked by **exhaustive
enumeration**: on small n we enumerate every assignment to the value
*and* auxiliary variables and assert that the satisfying assignments,
projected onto the value variables, are exactly the ≤k-true vectors —
i.e. the encoding is sound (no over-full vector sneaks through) *and*
complete (every legal vector is extendable to the auxiliaries).

The closed-form size formulas of :func:`amo_sizes` /
:func:`atmost_k_sequential_sizes` are asserted literally against the
builders' actual aux-var and clause counts, and every emitted literal
must stay inside the declared variable range.
"""

import itertools

import pytest

from repro.core.encodings import (AuxAllocator, BIMDIRECT, CMDDIRECT,
                                  CardinalityDirectScheme,
                                  DuplicateAuxVarError, PRODDIRECT, SEQDIRECT,
                                  amo_bimander, amo_commander, amo_pairwise,
                                  amo_product, amo_sequential, amo_sizes,
                                  atmost_k_sequential,
                                  atmost_k_sequential_sizes,
                                  atmost_k_totalizer, build_amo,
                                  build_vertex_encoding, commander_groups,
                                  product_grid)
from repro.core.encodings.base import Level


def clause_holds(clause, assignment):
    """``assignment[i]`` is the value of variable ``i + 1``."""
    return any(assignment[lit - 1] if lit > 0 else not assignment[-lit - 1]
               for lit in clause)


def projected_models(num_values, num_total, clauses):
    """All satisfying assignments, projected onto the value variables."""
    seen = set()
    for bits in itertools.product((False, True), repeat=num_total):
        if all(clause_holds(clause, bits) for clause in clauses):
            seen.add(bits[:num_values])
    return seen


def atmost_vectors(n, k):
    """Every length-n Boolean vector with at most k true entries."""
    return {bits for bits in itertools.product((False, True), repeat=n)
            if sum(bits) <= k}


def assert_literals_in_range(clauses, num_total):
    for clause in clauses:
        for lit in clause:
            assert lit != 0, f"literal 0 in {clause}"
            assert abs(lit) <= num_total, (
                f"literal {lit} exceeds declared range {num_total}")


def run_amo(kind, n, group_size=None):
    """Build ``kind`` over values 1..n; return (clauses, aux_count)."""
    values = list(range(1, n + 1))
    alloc = AuxAllocator(n + 1, reserved=range(1, n + 1))
    clauses = build_amo(kind, values, alloc, group_size=group_size)
    return clauses, alloc.count


AMO_CASES = [
    ("pairwise", None),
    ("sequential", None),
    ("commander", 2),
    ("commander", 3),
    ("bimander", 1),
    ("bimander", 2),
    ("bimander", 3),
    ("product", None),
]


@pytest.mark.parametrize("kind,group_size", AMO_CASES)
@pytest.mark.parametrize("n", range(1, 9))
class TestAtMostOneExhaustive:
    def test_accepts_exactly_atmost_one_true(self, kind, group_size, n):
        clauses, aux = run_amo(kind, n, group_size)
        total = n + aux
        assert projected_models(n, total, clauses) == atmost_vectors(n, 1)

    def test_sizes_match_closed_form(self, kind, group_size, n):
        clauses, aux = run_amo(kind, n, group_size)
        expected_aux, expected_clauses = amo_sizes(kind, n,
                                                   group_size=group_size)
        assert aux == expected_aux
        assert len(clauses) == expected_clauses

    def test_no_out_of_range_literals(self, kind, group_size, n):
        clauses, aux = run_amo(kind, n, group_size)
        assert_literals_in_range(clauses, n + aux)


class TestAtMostOnePinned:
    """Hand-computed sizes, independent of the formula code."""

    def test_pairwise_is_quadratic(self):
        clauses, aux = run_amo("pairwise", 6)
        assert aux == 0
        assert len(clauses) == 15
        assert set(clauses) == {(-i, -j) for i in range(1, 7)
                                for j in range(i + 1, 7)}

    def test_sequential_matches_sinz(self):
        # n = 5: 4 ladder variables, 3·5 - 4 = 11 clauses.
        clauses, aux = run_amo("sequential", 5)
        assert (aux, len(clauses)) == (4, 11)

    def test_commander_n6_g3(self):
        # Two groups of 3: each costs C(3,2)=3 pairwise + 3 implications
        # + 1 support clause = 7, and the two commanders need one final
        # pairwise clause: 2·7 + 1 = 15 clauses, 2 auxiliaries.
        clauses, aux = run_amo("commander", 6, group_size=3)
        assert (aux, len(clauses)) == (2, 15)

    def test_commander_recursion_depth(self):
        # n = 9, g = 2: levels 9 → 5 → 3 → 2, so 5 + 3 + 2 = 10 commanders.
        _, aux = run_amo("commander", 9, group_size=2)
        assert aux == 10

    def test_bimander_n6_g2(self):
        # 3 groups of 2 → 2 index bits: 3 pairwise + 6·2 = 15 clauses.
        clauses, aux = run_amo("bimander", 6, group_size=2)
        assert (aux, len(clauses)) == (2, 15)

    def test_product_grid_shapes(self):
        assert product_grid(4) == (2, 2)
        assert product_grid(5) == (3, 2)
        assert product_grid(9) == (3, 3)
        assert product_grid(10) == (4, 3)

    def test_product_n8(self):
        # 3×3 grid (last cell empty): 6 selectors, 2·8 + 3 + 3 = 22 clauses.
        clauses, aux = run_amo("product", 8)
        assert (aux, len(clauses)) == (6, 22)

    def test_product_degenerates_to_pairwise(self):
        for n in (1, 2, 3):
            assert run_amo("product", n) == (amo_pairwise(range(1, n + 1)), 0)

    def test_builders_reject_bad_parameters(self):
        alloc = AuxAllocator(10)
        with pytest.raises(ValueError):
            amo_commander([1, 2, 3], alloc, group_size=1)
        with pytest.raises(ValueError):
            amo_bimander([1, 2, 3], alloc, group_size=0)
        with pytest.raises(ValueError):
            build_amo("no-such-amo", [1, 2], alloc)


@pytest.mark.parametrize("n", range(2, 7))
@pytest.mark.parametrize("k", range(0, 7))
class TestAtMostKSequential:
    def test_accepts_exactly_atmost_k_true(self, n, k):
        if n > 5 and 1 < k < n:  # keep the exhaustive space tractable
            pytest.skip("register block too large for full enumeration")
        values = list(range(1, n + 1))
        alloc = AuxAllocator(n + 1, reserved=values)
        clauses = atmost_k_sequential(values, k, alloc)
        total = n + alloc.count
        assert projected_models(n, total, clauses) == atmost_vectors(n, k)

    def test_sizes_match_closed_form(self, n, k):
        values = list(range(1, n + 1))
        alloc = AuxAllocator(n + 1, reserved=values)
        clauses = atmost_k_sequential(values, k, alloc)
        expected_aux, expected_clauses = atmost_k_sequential_sizes(n, k)
        assert alloc.count == expected_aux
        assert len(clauses) == expected_clauses
        assert_literals_in_range(clauses, n + alloc.count)

    def test_k1_reduces_to_amo(self, n, k):
        if k != 1:
            pytest.skip("k = 1 case only")
        values = list(range(1, n + 1))
        assert (atmost_k_sequential(values, 1,
                                    AuxAllocator(n + 1, reserved=values))
                == amo_sequential(values,
                                  AuxAllocator(n + 1, reserved=values)))


@pytest.mark.parametrize("n", range(2, 6))
@pytest.mark.parametrize("k", range(0, 6))
class TestAtMostKTotalizer:
    def test_accepts_exactly_atmost_k_true(self, n, k):
        values = list(range(1, n + 1))
        alloc = AuxAllocator(n + 1, reserved=values)
        clauses = atmost_k_totalizer(values, k, alloc)
        total = n + alloc.count
        assert projected_models(n, total, clauses) == atmost_vectors(n, k)
        assert_literals_in_range(clauses, total)

    def test_saturation_caps_aux_width(self, n, k):
        if not 0 < k < n:
            pytest.skip("aux variables only exist for 0 < k < n")
        values = list(range(1, n + 1))
        alloc = AuxAllocator(n + 1, reserved=values)
        atmost_k_totalizer(values, k, alloc)
        # n leaves → n-1 internal counter nodes, each at most k+1 wide.
        assert alloc.count <= (n - 1) * (k + 1)


class TestAuxAllocator:
    def test_monotonic_and_counted(self):
        alloc = AuxAllocator(5)
        assert alloc.fresh_block(3) == [5, 6, 7]
        assert alloc.fresh() == 8
        assert alloc.count == 4
        assert alloc.next_free == 9

    def test_reserved_collision_raises(self):
        """The duplicate-aux-var regression: an allocator whose range
        runs into the value block must fail loudly, not alias groups."""
        alloc = AuxAllocator(3, reserved=range(1, 5))
        with pytest.raises(DuplicateAuxVarError):
            alloc.fresh()

    def test_rejects_non_positive_start(self):
        with pytest.raises(ValueError):
            AuxAllocator(0)


class _OverlappingAllocatorScheme(CardinalityDirectScheme):
    """Deliberately broken: auxiliaries start *inside* the value block."""

    def allocator(self, n):
        return AuxAllocator(max(1, n - 1), reserved=range(1, n + 1))


class _UndeclaredAuxScheme(CardinalityDirectScheme):
    """Deliberately broken: emits aux literals but never declares them."""

    def num_vars(self, n):
        return n


class TestDuplicateAuxRegression:
    """Satellite: encodings can never silently reuse variable indices.

    Two failure shapes, both latent before this PR: (a) an allocator
    whose range overlaps the value variables would merge two constraint
    groups into one; (b) a scheme that under-declares ``num_vars`` would
    let one vertex's auxiliaries alias the *next vertex's* value block
    once :class:`EncodedProblem` lays blocks out contiguously.
    """

    def test_overlapping_allocator_is_rejected(self):
        broken = _OverlappingAllocatorScheme("broken-alloc", "sequential")
        with pytest.raises(DuplicateAuxVarError):
            broken.structural_clauses(5)

    def test_undeclared_aux_vars_fail_validation(self):
        broken = _UndeclaredAuxScheme("broken-decl", "sequential")
        with pytest.raises(ValueError, match="never declared"):
            build_vertex_encoding(5, [Level(broken, None)])

    def test_healthy_schemes_pass_validation(self):
        for scheme in (CMDDIRECT, BIMDIRECT, PRODDIRECT, SEQDIRECT):
            encoding = build_vertex_encoding(6, [Level(scheme, None)])
            encoding.validate()


@pytest.mark.parametrize("scheme", [CMDDIRECT, BIMDIRECT, PRODDIRECT,
                                    SEQDIRECT],
                         ids=lambda s: s.name)
@pytest.mark.parametrize("n", range(1, 7))
class TestCardinalityDirectSchemes:
    def test_patterns_are_value_variables(self, scheme, n):
        scheme.check(n)
        assert scheme.patterns(n) == [(value + 1,) for value in range(n)]

    def test_structural_clauses_select_exactly_one(self, scheme, n):
        """ALO + library AMO: projections are exactly the one-hot vectors."""
        total = scheme.num_vars(n)
        models = projected_models(n, total, scheme.structural_clauses(n))
        assert models == {tuple(i == value for i in range(n))
                          for value in range(n)}

    def test_final_level_only(self, scheme, n):
        with pytest.raises(NotImplementedError):
            scheme.num_subdomains(n)
