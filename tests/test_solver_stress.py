"""Stress and special-structure tests for the CDCL solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import (CNF, SolverConfig, minisat_like, siege_like, solve,
                       solve_by_enumeration, solve_dpll)
from repro.sat.solver.cdcl import CDCLSolver
from .strategies import make_random_cnf


def xor_chain(length: int, parity: bool) -> CNF:
    """x1 ^ x2 ^ ... ^ xn = parity, as CNF (Tseitin-free, direct)."""
    cnf = CNF(num_vars=length + 1)
    # carry variables: c_i == x_1 ^ ... ^ x_i encoded pairwise would need
    # auxiliaries; instead encode via chain equalities using aux vars.
    aux_base = length + 1
    cnf.reserve(length + length)
    previous = 1
    for i in range(2, length + 1):
        aux = aux_base + i - 2
        cnf.reserve(aux)
        # aux == previous XOR x_i
        cnf.add_clause([-aux, previous, i])
        cnf.add_clause([-aux, -previous, -i])
        cnf.add_clause([aux, -previous, i])
        cnf.add_clause([aux, previous, -i])
        previous = aux
    cnf.add_clause([previous if parity else -previous])
    return cnf


def at_most_one_ladder(n: int) -> CNF:
    """n variables, pairwise at-most-one, plus at-least-one: SAT."""
    cnf = CNF(num_vars=n)
    cnf.add_clause(list(range(1, n + 1)))
    for i in range(1, n + 1):
        for j in range(i + 1, n + 1):
            cnf.add_clause([-i, -j])
    return cnf


class TestStructuredFormulas:
    @pytest.mark.parametrize("length", [2, 5, 10, 20])
    @pytest.mark.parametrize("parity", [True, False])
    def test_xor_chains_sat(self, length, parity):
        result = solve(xor_chain(length, parity))
        assert result.is_sat  # XOR constraints are always satisfiable
        assert result.model.satisfies(xor_chain(length, parity))

    @pytest.mark.parametrize("length", [2, 5, 12])
    def test_contradictory_xor(self, length):
        # Assert both parities of the same XOR chain: the final carry
        # variable (aux_base + length - 2 = 2*length - 1) is forced both
        # ways.
        merged = xor_chain(length, True)
        final_carry = 2 * length - 1
        merged.add_clause([-final_carry])
        assert not solve(merged).is_sat

    @pytest.mark.parametrize("n", [1, 2, 10, 40])
    def test_at_most_one_ladders(self, n):
        result = solve(at_most_one_ladder(n))
        assert result.is_sat
        assert sum(result.model.value(v) for v in range(1, n + 1)) == 1

    def test_amo_plus_two_forced_is_unsat(self):
        cnf = at_most_one_ladder(5)
        cnf.add_clause([1])
        cnf.add_clause([2])
        assert not solve(cnf).is_sat

    def test_long_implication_chain(self):
        n = 500
        cnf = CNF([[1]] + [[-i, i + 1] for i in range(1, n)])
        result = solve(cnf)
        assert result.is_sat
        assert result.model.value(n)

    def test_deep_chain_with_contradiction(self):
        n = 500
        cnf = CNF([[1]] + [[-i, i + 1] for i in range(1, n)] + [[-n]])
        assert not solve(cnf).is_sat


class TestCrossSolverAgreement:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           num_vars=st.integers(min_value=1, max_value=12),
           num_clauses=st.integers(min_value=1, max_value=50))
    def test_cdcl_presets_and_dpll_agree(self, seed, num_vars, num_clauses):
        cnf = make_random_cnf(num_vars, num_clauses, seed)
        answers = {
            solve(cnf, minisat_like(seed=seed % 7)).is_sat,
            solve(cnf, siege_like(seed=seed % 5)).is_sat,
            solve_dpll(cnf).is_sat,
        }
        assert len(answers) == 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_assumption_equivalence_property(self, seed):
        import random
        rng = random.Random(seed)
        cnf = make_random_cnf(8, 26, seed)
        assumptions = [rng.choice([1, -1]) * v
                       for v in rng.sample(range(1, 9), rng.randint(1, 4))]
        augmented = cnf.copy()
        for lit in assumptions:
            augmented.add_clause([lit])
        assert (CDCLSolver(cnf).solve(assumptions).is_sat
                == solve_by_enumeration(augmented).is_sat)


class TestSolverRobustness:
    def test_large_clause(self):
        cnf = CNF([list(range(1, 200))])
        assert solve(cnf).is_sat

    def test_many_duplicate_clauses(self):
        cnf = CNF([[1, 2]] * 200 + [[-1], [-2]])
        assert not solve(cnf).is_sat

    def test_variable_gap(self):
        # Mentions vars 1 and 1000 only; the rest are free.
        cnf = CNF([[1, 1000], [-1], [-1000, 999]])
        result = solve(cnf)
        assert result.is_sat
        assert result.model.num_vars == 1000
        assert result.model.satisfies(cnf)

    def test_aggressive_reduction_and_restarts_together(self):
        from .test_cdcl import pigeonhole
        config = SolverConfig(restart_base=5, max_learnts_factor=0.02,
                              max_learnts_growth=1.0, var_decay=0.8)
        solver = CDCLSolver(pigeonhole(6), config)
        assert not solver.solve().is_sat
        assert solver.stats["restarts"] > 0
        assert solver.stats["deleted_clauses"] > 0

    def test_stats_are_populated(self):
        solver = CDCLSolver(make_random_cnf(10, 40, seed=12))
        result = solver.solve()
        for key in ("conflicts", "decisions", "propagations",
                    "solve_time", "solver"):
            assert key in result.stats
