"""Tests for track assignment decoding and the legality verifier."""

import pytest

from repro.fpga import (Net, Netlist, assignment_from_coloring,
                        build_routing_csp, is_legal, route_netlist,
                        verify_track_assignment)
from repro.fpga.tracks import TrackAssignment


def contended_csp(width=3):
    nets = [Net(f"n{i}", (0, 0), ((3, 0),)) for i in range(3)]
    routing = route_netlist(Netlist("t", 4, 1, nets), congestion_penalty=0.0)
    return build_routing_csp(routing, width)


class TestAssignment:
    def test_from_coloring(self):
        csp = contended_csp()
        assignment = assignment_from_coloring(csp, {0: 0, 1: 1, 2: 2})
        assert assignment.track_of(1) == 1
        assert is_legal(assignment)

    def test_colliding_tracks_detected(self):
        csp = contended_csp()
        assignment = assignment_from_coloring(csp, {0: 0, 1: 0, 2: 2})
        violations = verify_track_assignment(assignment)
        assert any("collide" in v for v in violations)

    def test_same_net_may_share_track(self):
        netlist = Netlist("t", 5, 1, [Net("a", (0, 0), ((2, 0), (4, 0)))])
        routing = route_netlist(netlist, congestion_penalty=0.0)
        csp = build_routing_csp(routing, 2)
        assignment = assignment_from_coloring(csp, {0: 1, 1: 1})
        assert is_legal(assignment)

    def test_track_out_of_range_detected(self):
        csp = contended_csp(width=2)
        assignment = TrackAssignment(csp.routing, 2, {0: 0, 1: 1, 2: 5})
        violations = verify_track_assignment(assignment)
        assert any("outside" in v for v in violations)

    def test_missing_track_detected(self):
        csp = contended_csp()
        assignment = TrackAssignment(csp.routing, 3, {0: 0})
        violations = verify_track_assignment(assignment)
        assert sum("no track" in v for v in violations) == 2

    def test_verifier_matches_coloring_validity(self):
        # Any proper coloring of the conflict graph is a legal assignment
        # and any improper one is illegal.
        csp = contended_csp()
        proper = {0: 0, 1: 1, 2: 2}
        improper = {0: 0, 1: 0, 2: 1}
        assert csp.problem.is_valid_coloring(proper)
        assert is_legal(assignment_from_coloring(csp, proper))
        assert not csp.problem.is_valid_coloring(improper)
        assert not is_legal(assignment_from_coloring(csp, improper))
