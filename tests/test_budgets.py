"""Budget and cancellation semantics of the solving API.

The contract under test (docs/api.md):

* ``SolveConfig.conflict_budget`` / ``propagation_budget`` /
  ``wall_clock_limit`` stop the search *cooperatively* at conflict or
  decision boundaries, returning BUDGET_EXHAUSTED / TIMEOUT with valid
  partial stats — identical semantics on both engines.
* A :class:`CancelToken` stops a solve from outside (status TIMEOUT).
* With no budget set, the search takes the exact unbudgeted code path
  (pinned bit-exactly by tests/test_solver_trajectories.py).
"""

import threading
import time

import pytest

from repro.bench.throughput import pigeonhole
from repro.coloring import ColoringProblem, complete_graph, cycle_graph
from repro.core import Strategy, solve_coloring
from repro.core.incremental import IncrementalColoringSolver
from repro.sat import CancelToken, SolveLimits, SolveStatus
from repro.sat.solver import CDCLSolver, SolverConfig
from repro.sat.solver.cdcl import BudgetExceeded

ENGINES = ["arena", "legacy"]


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


class TestConflictBudget:
    def test_stops_within_budget_with_partial_stats(self, engine):
        budget = 50
        solver = CDCLSolver(pigeonhole(7),
                            SolverConfig(seed=1, engine=engine,
                                         conflict_budget=budget))
        result = solver.solve()
        assert result.status is SolveStatus.BUDGET_EXHAUSTED
        assert not result.is_sat and result.model is None
        assert result.stats["conflicts"] == budget
        assert result.stats["decisions"] > 0
        assert result.stats["propagations"] > 0
        assert result.stats["stop_reason"] == f"conflict budget {budget}"
        assert result.stats["solve_time"] >= 0.0

    def test_budget_larger_than_needed_solves_normally(self, engine):
        config = SolverConfig(seed=1, engine=engine, conflict_budget=10**9)
        result = CDCLSolver(pigeonhole(4), config).solve()
        assert result.status is SolveStatus.UNSAT
        assert "stop_reason" not in result.stats

    def test_report_carries_status_and_reason(self, engine):
        config = SolverConfig(seed=1, engine=engine, conflict_budget=5)
        report = CDCLSolver(pigeonhole(7), config).solve().report()
        assert report.status is SolveStatus.BUDGET_EXHAUSTED
        assert report.conflicts == 5
        assert "conflict budget" in report.detail


class TestPropagationBudget:
    def test_stops_soon_after_budget(self, engine):
        budget = 1000
        config = SolverConfig(seed=1, engine=engine,
                              propagation_budget=budget)
        result = CDCLSolver(pigeonhole(7), config).solve()
        assert result.status is SolveStatus.BUDGET_EXHAUSTED
        assert result.stats["propagations"] >= budget
        assert result.stats["stop_reason"] == f"propagation budget {budget}"


@pytest.mark.slow
class TestWallClock:
    def test_timeout_on_hard_instance(self, engine):
        # Acceptance criterion: pigeonhole(9) runs for minutes
        # unbudgeted; with wall_clock_limit=1.0 the call must come back
        # promptly with TIMEOUT and consistent partial stats.
        config = SolverConfig(seed=1, engine=engine, wall_clock_limit=1.0)
        start = time.perf_counter()
        result = CDCLSolver(pigeonhole(9), config).solve()
        elapsed = time.perf_counter() - start
        assert result.status is SolveStatus.TIMEOUT
        assert elapsed < 2.0  # ~1.2s nominal; headroom for slow CI
        assert result.stats["stop_reason"] == "wall-clock limit"
        assert result.stats["conflicts"] > 0
        assert result.stats["solve_time"] == pytest.approx(elapsed, abs=0.5)


class TestCancelToken:
    def test_pre_cancelled_token_stops_immediately(self, engine):
        token = CancelToken()
        token.cancel()
        config = SolverConfig(seed=1, engine=engine)
        result = CDCLSolver(pigeonhole(8), config).solve(cancel=token)
        assert result.status is SolveStatus.TIMEOUT
        assert result.stats["stop_reason"] == "cancelled"
        assert result.stats["conflicts"] <= 1

    def test_cancel_from_another_thread(self, engine):
        token = CancelToken()
        config = SolverConfig(seed=1, engine=engine)
        solver = CDCLSolver(pigeonhole(9), config)
        timer = threading.Timer(0.2, token.cancel)
        timer.start()
        try:
            start = time.perf_counter()
            result = solver.solve(cancel=token)
            elapsed = time.perf_counter() - start
        finally:
            timer.cancel()
        assert result.status is SolveStatus.TIMEOUT
        assert result.stats["stop_reason"] == "cancelled"
        assert 0.1 < elapsed < 5.0


class TestSolveLimits:
    def test_validation(self):
        with pytest.raises(ValueError):
            SolveLimits(conflict_budget=0)
        with pytest.raises(ValueError):
            SolveLimits(wall_clock_limit=-1.0)

    def test_merge_keeps_tighter_bound_per_axis(self):
        a = SolveLimits(conflict_budget=100, wall_clock_limit=10.0)
        b = SolveLimits(conflict_budget=50, propagation_budget=1000)
        merged = a.merge(b)
        assert merged.conflict_budget == 50
        assert merged.propagation_budget == 1000
        assert merged.wall_clock_limit == 10.0

    def test_with_wall_clock_tightens_only(self):
        limits = SolveLimits(wall_clock_limit=5.0)
        assert limits.with_wall_clock(2.0).wall_clock_limit == 2.0
        assert limits.with_wall_clock(60.0).wall_clock_limit == 5.0
        assert limits.with_wall_clock(None) is limits

    def test_as_config_kwargs_round_trip(self):
        limits = SolveLimits(conflict_budget=7, wall_clock_limit=1.5)
        config = SolverConfig(**limits.as_config_kwargs())
        assert config.conflict_budget == 7
        assert config.wall_clock_limit == 1.5
        assert config.budgeted


class TestPipelineBudgets:
    def test_solve_coloring_budget_exhausted(self):
        problem = ColoringProblem(complete_graph(11), 10)
        outcome = solve_coloring(problem, Strategy("muldirect", "none"),
                                 limits=SolveLimits(conflict_budget=30))
        assert outcome.status is SolveStatus.BUDGET_EXHAUSTED
        assert not outcome.is_sat
        assert outcome.coloring is None
        assert outcome.solver_stats["conflicts"] == 30
        assert outcome.report.status is SolveStatus.BUDGET_EXHAUSTED

    def test_solve_coloring_unbudgeted_unchanged(self):
        problem = ColoringProblem(cycle_graph(7), 3)
        outcome = solve_coloring(problem, Strategy("muldirect", "s1"))
        assert outcome.status is SolveStatus.SAT
        assert problem.is_valid_coloring(outcome.coloring)

    def test_wall_clock_covers_encoding(self):
        # An already-expired deadline must yield TIMEOUT without
        # starting the search at all.
        problem = ColoringProblem(cycle_graph(7), 3)
        token = CancelToken()
        token.cancel()
        outcome = solve_coloring(problem, Strategy("muldirect", "s1"),
                                 limits=SolveLimits(wall_clock_limit=100.0),
                                 cancel=token)
        assert outcome.status is SolveStatus.TIMEOUT
        assert outcome.solve_time == 0.0


class TestIncrementalBudgets:
    def test_budget_is_per_query(self):
        # Each query gets a fresh conflict budget: a sweep over many K
        # values cannot be starved by an expensive early query.
        problem = ColoringProblem(complete_graph(11), 10)
        solver = IncrementalColoringSolver(
            problem, Strategy("muldirect", "none"), max_colors=10,
            limits=SolveLimits(conflict_budget=25))
        first = solver.query(10)
        second = solver.query(10)
        assert first.status is SolveStatus.BUDGET_EXHAUSTED
        assert second.status is SolveStatus.BUDGET_EXHAUSTED
        assert solver.stats.conflicts_per_query == [25, 25]
        assert solver.stats.statuses[10] is SolveStatus.BUDGET_EXHAUSTED
        assert 10 not in solver.stats.results  # undecided: not recorded

    def test_is_colorable_raises_on_undecided(self):
        problem = ColoringProblem(complete_graph(11), 10)
        solver = IncrementalColoringSolver(
            problem, Strategy("muldirect", "none"), max_colors=10,
            limits=SolveLimits(conflict_budget=5))
        with pytest.raises(BudgetExceeded):
            solver.is_colorable(10)

    def test_decided_queries_still_recorded(self):
        problem = ColoringProblem(cycle_graph(9), 3)
        solver = IncrementalColoringSolver(
            problem, Strategy("muldirect", "s1"),
            limits=SolveLimits(conflict_budget=10**6))
        report = solver.query(3)
        assert report.status is SolveStatus.SAT
        assert solver.stats.results[3] is True
