"""Tests for ITE trees and the ITE-linear / ITE-log schemes, anchored on
the paper's Figure 1 (13-value domain)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.encodings import (CustomITEScheme, ITE_LINEAR, ITE_LOG,
                                  ITENode, ITETree, balanced_tree,
                                  linear_tree)
from repro.core.patterns import pattern_holds, patterns_are_distinct


def exhaustive_selection_counts(patterns, num_vars):
    """For each total assignment, which values hold?  Returns a list of
    selected-value lists, one per assignment."""
    selections = []
    for bits in range(2 ** num_vars):
        values = [(bits >> i) & 1 == 1 for i in range(num_vars)]
        selections.append([v for v, p in enumerate(patterns)
                           if pattern_holds(p, values)])
    return selections


class TestITETree:
    def test_single_leaf(self):
        tree = ITETree(0, 1)
        assert tree.num_vars == 0
        assert tree.patterns() == [()]

    def test_simple_node(self):
        tree = ITETree(ITENode(1, 0, 1), 2)
        assert tree.patterns() == [(1,), (-1,)]

    def test_unreachable_leaf_rejected(self):
        with pytest.raises(ValueError):
            ITETree(ITENode(1, 0, 0), 2)

    def test_duplicate_leaf_rejected(self):
        with pytest.raises(ValueError):
            ITETree(ITENode(1, 0, 0), 1)

    def test_leaf_out_of_range(self):
        with pytest.raises(ValueError):
            ITETree(ITENode(1, 0, 5), 2)

    def test_repeated_variable_on_path_rejected(self):
        # var 1 guards both the root and a nested ITE on the same path.
        bad = ITENode(1, ITENode(1, 0, 1), 2)
        with pytest.raises(ValueError):
            ITETree(bad, 3)

    def test_shared_variable_across_branches_allowed(self):
        # ITE-log-style sharing: var 2 on both sides of the root.
        root = ITENode(1, ITENode(2, 0, 1), ITENode(2, 2, 3))
        tree = ITETree(root, 4)
        assert tree.num_vars == 2
        assert tree.depth() == 2


class TestLinearScheme:
    def test_figure_1a_shape(self):
        """Fig. 1.a: 13 values selected by 12 indexing variables."""
        patterns = ITE_LINEAR.patterns(13)
        assert ITE_LINEAR.num_vars(13) == 12
        assert patterns[0] == (1,)
        assert patterns[1] == (-1, 2)
        assert patterns[11] == (-1, -2, -3, -4, -5, -6, -7, -8, -9, -10, -11, 12)
        assert patterns[12] == (-1, -2, -3, -4, -5, -6, -7, -8, -9, -10, -11, -12)

    def test_no_structural_clauses(self):
        assert ITE_LINEAR.structural_clauses(7) == []

    def test_exactly_one_value_selected(self):
        for n in (1, 2, 3, 5, 8):
            patterns = ITE_LINEAR.patterns(n)
            for selected in exhaustive_selection_counts(patterns,
                                                        ITE_LINEAR.num_vars(n)):
                assert len(selected) == 1

    def test_subdomains(self):
        # ITE-linear with i variables distinguishes i+1 subdomains.
        assert ITE_LINEAR.num_subdomains(2) == 3


class TestLogScheme:
    def test_figure_1b_variable_count(self):
        """Fig. 1.b: 13 values need ceil(log2 13) = 4 shared variables."""
        assert ITE_LOG.num_vars(13) == 4

    def test_depth_is_log_bounded(self):
        for n in range(1, 40):
            tree = ITETree(balanced_tree(n), n)
            expected = math.ceil(math.log2(n)) if n > 1 else 0
            assert tree.depth() == expected
            lengths = {len(p) for p in tree.patterns()}
            assert lengths <= {expected, max(expected - 1, 0)}

    def test_no_structural_clauses(self):
        assert ITE_LOG.structural_clauses(13) == []

    def test_exactly_one_value_selected(self):
        for n in (1, 2, 3, 5, 6, 13):
            patterns = ITE_LOG.patterns(n)
            for selected in exhaustive_selection_counts(patterns,
                                                        ITE_LOG.num_vars(n)):
                assert len(selected) == 1

    def test_power_of_two_matches_binary_codes(self):
        # With n a power of two the tree patterns all have full depth.
        patterns = ITE_LOG.patterns(8)
        assert all(len(p) == 3 for p in patterns)
        assert patterns_are_distinct(patterns)

    def test_subdomains(self):
        assert ITE_LOG.num_subdomains(2) == 4


class TestCustomScheme:
    def test_skewed_tree(self):
        # A right-comb built manually must behave like ITE-linear.
        scheme = CustomITEScheme(linear_tree, name="comb")
        assert scheme.patterns(5) == ITE_LINEAR.patterns(5)
        assert scheme.num_vars(5) == 4
        assert scheme.structural_clauses(5) == []

    def test_cannot_be_hierarchy_top(self):
        scheme = CustomITEScheme(balanced_tree)
        with pytest.raises(NotImplementedError):
            scheme.num_subdomains(2)

    def test_arbitrary_shape_selects_exactly_one(self):
        def lopsided(n):
            if n == 5:
                return ITENode(1,
                               ITENode(2, 0, 1),
                               ITENode(2, 2, ITENode(3, 3, 4)))
            return balanced_tree(n)

        scheme = CustomITEScheme(lopsided)
        patterns = scheme.patterns(5)
        for selected in exhaustive_selection_counts(patterns, scheme.num_vars(5)):
            assert len(selected) == 1


@given(st.integers(min_value=1, max_value=32))
def test_both_shapes_partition_assignment_space(n):
    """Every assignment to the indexing variables selects exactly one leaf,
    for both tree shapes (the paper's multiplexor property)."""
    for scheme in (ITE_LINEAR, ITE_LOG):
        num_vars = scheme.num_vars(n)
        if num_vars > 12:
            continue  # keep the exhaustive walk small
        patterns = scheme.patterns(n)
        assert patterns_are_distinct(patterns)
        for selected in exhaustive_selection_counts(patterns, num_vars):
            assert len(selected) == 1
