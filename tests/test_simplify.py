"""Tests for the CNF preprocessor."""

import pytest
from hypothesis import given, settings

from repro.sat import CNF, solve, solve_by_enumeration
from repro.sat.simplify import simplify, solve_simplified
from .strategies import make_random_cnf, small_cnfs


class TestUnits:
    def test_unit_chain_collapses(self):
        cnf = CNF([[1], [-1, 2], [-2, 3], [3, 4]])
        result = simplify(cnf)
        assert result.forced == {1: True, 2: True, 3: True}
        assert result.cnf.num_clauses == 0

    def test_contradiction_detected(self):
        result = simplify(CNF([[1], [-1, 2], [-2]]))
        assert result.contradiction

    def test_empty_clause_detected(self):
        assert simplify(CNF([[]])).contradiction


class TestPure:
    def test_pure_literal_removed(self):
        # Variable 3 only occurs positively.
        cnf = CNF([[1, 3], [-1, 3], [1, -2], [-1, 2]])
        result = simplify(cnf)
        assert result.pure.get(3) is True
        assert all(3 not in map(abs, c) for c in result.cnf)

    def test_cascading_purity(self):
        # Eliminating 3 makes 2 pure in turn.
        cnf = CNF([[3, 2], [3, -1], [-2, 1], [1, -2]])
        result = simplify(cnf)
        assert 3 in result.pure
        assert result.cnf.num_clauses == 0 or 2 in result.pure


class TestDedup:
    def test_tautologies_dropped(self):
        result = simplify(CNF([[1, -1, 2], [2, 3]]))
        assert result.stats["tautologies"] == 1

    def test_duplicates_dropped(self):
        result = simplify(CNF([[1, 2], [2, 1], [1, 2, 2]]))
        assert result.stats["duplicates"] == 2


class TestSubsumption:
    def test_superset_removed(self):
        # Every variable occurs in both polarities so purity cannot fire.
        cnf = CNF([[1, 2], [1, 2, 3], [1, 2, -3], [-1, -2], [-1, 3], [-2, -3]])
        result = simplify(cnf)
        assert result.stats["subsumed"] == 2
        clause_sets = {frozenset(c) for c in result.cnf}
        assert frozenset((1, 2)) in clause_sets
        assert frozenset((1, 2, 3)) not in clause_sets
        assert frozenset((1, 2, -3)) not in clause_sets

    def test_subsumption_optional(self):
        cnf = CNF([[1, 2], [1, 2, 3], [-1, -2], [-3, -1], [3, 2], [-2, 1]])
        result = simplify(cnf, subsume=False)
        assert "subsumed" not in result.stats
        assert frozenset((1, 2, 3)) in {frozenset(c) for c in result.cnf}


class TestEquisatisfiability:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_formulas(self, seed):
        cnf = make_random_cnf(num_vars=8, num_clauses=30, seed=seed + 300)
        expected = solve_by_enumeration(cnf).is_sat
        result = simplify(cnf)
        if result.contradiction:
            assert not expected
            return
        got = solve(result.cnf)
        assert got.is_sat == expected
        if got.is_sat:
            lifted = result.extend_model(got.model)
            assert lifted.satisfies(cnf)

    @settings(max_examples=50, deadline=None)
    @given(small_cnfs())
    def test_property(self, cnf):
        expected = solve_by_enumeration(cnf).is_sat
        result = simplify(cnf)
        if result.contradiction:
            assert not expected
        else:
            assert solve(result.cnf).is_sat == expected


class TestModelExtension:
    def test_forced_and_pure_assignments_restored(self):
        # 1 is forced, 3 is pure; the residual formula decides 2.
        cnf = CNF([[1], [-1, 2, 3], [2, -2]])
        result = simplify(cnf)
        assert not result.contradiction
        solved = solve(result.cnf)
        lifted = result.extend_model(solved.model)
        assert lifted.value(1) is True
        assert lifted.satisfies(cnf)

    @settings(max_examples=40, deadline=None)
    @given(small_cnfs(max_vars=6, max_clauses=14))
    def test_extension_property(self, cnf):
        """Any model of the simplified formula lifts to a model of the
        original — the contract the solver integration relies on."""
        result = simplify(cnf)
        if result.contradiction:
            return
        solved = solve(result.cnf)
        if solved.is_sat:
            assert result.extend_model(solved.model).satisfies(cnf)


class TestIdempotence:
    @pytest.mark.parametrize("seed", range(10))
    def test_second_pass_finds_nothing(self, seed):
        """simplify is a fixpoint: re-simplifying its output forces no
        further units and eliminates no further pure literals."""
        cnf = make_random_cnf(num_vars=8, num_clauses=30, seed=seed + 1300)
        first = simplify(cnf)
        if first.contradiction:
            return
        second = simplify(first.cnf)
        assert not second.contradiction
        assert not second.forced
        assert not second.pure
        assert second.stats.get("subsumed", 0) == 0


class TestSolveSimplified:
    @pytest.mark.parametrize("seed", range(20))
    def test_drop_in_equivalence(self, seed):
        cnf = make_random_cnf(num_vars=9, num_clauses=35, seed=seed + 900)
        expected = solve_by_enumeration(cnf).is_sat
        result = solve_simplified(cnf)
        assert result.is_sat == expected
        if expected:
            assert result.model.satisfies(cnf)

    def test_on_encoded_routing_instance(self):
        """Preprocessing shrinks a symmetry-broken routing formula without
        changing the verdict."""
        from repro.coloring import ColoringProblem, complete_graph
        from repro.core import get_encoding
        from repro.core.symmetry import apply_symmetry

        problem = ColoringProblem(complete_graph(6), 5)
        encoded = get_encoding("direct").encode(problem)
        apply_symmetry(encoded, "s1")
        simplified = simplify(encoded.cnf)
        assert simplified.stats["forced_units"] > 0
        # On K6 with 5 colors, s1 pins a 4-clique to distinct colors and
        # unit propagation alone refutes the rest — preprocessing *is* the
        # whole proof here.
        assert simplified.contradiction
        assert not solve_simplified(encoded.cnf).is_sat
        assert not solve(encoded.cnf).is_sat
