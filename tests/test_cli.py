"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestBenchmarks:
    def test_lists_profiles(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "alu2" in out and "k2" in out and "table2" in out


class TestEncodings:
    def test_lists_whole_registry(self, capsys):
        from repro.core.encodings import REGISTRY_ENCODINGS
        assert main(["encodings"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY_ENCODINGS:
            assert name in out
        assert f"{len(REGISTRY_ENCODINGS)} registered encodings" in out
        assert "modern" in out and "paper" in out

    def test_colors_flag_changes_sizes(self, capsys):
        assert main(["encodings", "--colors", "4"]) == 0
        out = capsys.readouterr().out
        assert "(K=4)" in out
        # pop spends K-1 threshold variables per vertex.
        pop_row = next(line for line in out.splitlines()
                       if line.startswith("pop "))
        assert pop_row.split()[2] == "3"


class TestGenerate:
    def test_to_stdout(self, capsys):
        assert main(["generate", "alu2", "--scale", "0.5"]) == 0
        assert '"repro-netlist"' in capsys.readouterr().out

    def test_to_file(self, tmp_path, capsys):
        path = str(tmp_path / "n.json")
        assert main(["generate", "alu2", "--scale", "0.5",
                     "--out", path]) == 0
        from repro.fpga import read_netlist
        assert read_netlist(path).num_nets > 0

    def test_unknown_benchmark(self, capsys):
        assert main(["generate", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestWidthAndRoute:
    @pytest.fixture(scope="class")
    def netlist_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli") / "alu2.json")
        assert main(["generate", "alu2", "--scale", "0.55",
                     "--out", path]) == 0
        return path

    def test_width(self, netlist_path, capsys):
        assert main(["width", netlist_path]) == 0
        out = capsys.readouterr().out
        assert "minimum channel width" in out

    def test_route_routable_exits_dimacs_sat(self, netlist_path, capsys):
        assert main(["route", netlist_path, "--width", "9"]) == 10
        assert "ROUTABLE" in capsys.readouterr().out

    def test_route_unroutable_exits_dimacs_unsat(self, netlist_path, capsys):
        assert main(["route", netlist_path, "--width", "1"]) == 20
        assert "UNROUTABLE" in capsys.readouterr().out

    def test_route_writes_tracks(self, netlist_path, tmp_path, capsys):
        tracks = str(tmp_path / "tracks.json")
        assert main(["route", netlist_path, "--width", "9",
                     "--tracks-out", tracks]) == 10
        import json
        payload = json.loads(open(tracks).read())
        assert payload["format"] == "repro-tracks"

    def test_route_benchmark_by_name(self, capsys):
        code = main(["route", "alu2", "--scale", "0.55", "--width", "9"])
        assert code == 10

    def test_route_certify_unroutable(self, netlist_path, capsys):
        code = main(["route", netlist_path, "--width", "2", "--certify",
                     "--encoding", "ITE-log"])
        assert code == 20
        out = capsys.readouterr().out
        assert "certificate" in out and "verified" in out

    def test_route_conflict_budget_exits_unknown(self, netlist_path, capsys):
        # W=4 without symmetry breaking needs ~70 conflicts to refute;
        # a budget of 5 must stop the run undecided.
        code = main(["route", netlist_path, "--width", "4",
                     "--symmetry", "none", "--conflict-budget", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "UNDECIDED" in out and "conflict budget" in out

    def test_width_budget_exits_unknown(self, netlist_path, capsys):
        code = main(["width", netlist_path, "--symmetry", "none",
                     "--conflict-budget", "3"])
        assert code == 0
        assert "UNKNOWN" in capsys.readouterr().out

    def test_width_incremental_agrees(self, netlist_path, capsys):
        assert main(["width", netlist_path]) == 0
        plain = capsys.readouterr().out
        assert main(["width", netlist_path, "--incremental"]) == 0
        incremental = capsys.readouterr().out
        import re
        get = lambda text: re.search(r"W = (\d+)", text).group(1)
        assert get(plain) == get(incremental)
        assert "incremental queries" in incremental


class TestTwoStageFlow:
    def test_extract_encode_solve(self, tmp_path, capsys):
        col = str(tmp_path / "g.col")
        cnf = str(tmp_path / "g.cnf")
        assert main(["extract", "alu2", "--scale", "0.55",
                     "--width", "2", "--out", col]) == 0
        assert main(["encode", col, "--colors", "2", "--out", cnf]) == 0
        # W=2 is far below minimum: must be UNSAT (DIMACS exit 20).
        assert main(["solve", cnf]) == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_encode_to_stdout(self, tmp_path, capsys):
        col = str(tmp_path / "g.col")
        assert main(["extract", "alu2", "--scale", "0.55",
                     "--width", "3", "--out", col]) == 0
        capsys.readouterr()
        assert main(["encode", col, "--colors", "3",
                     "--encoding", "muldirect"]) == 0
        assert "p cnf" in capsys.readouterr().out

    def test_color_sat_and_unsat(self, tmp_path, capsys):
        col = str(tmp_path / "g.col")
        main(["extract", "alu2", "--scale", "0.55", "--width", "2",
              "--out", col])
        assert main(["color", col, "--colors", "20", "--show"]) == 10
        assert "vertex 1" in capsys.readouterr().out
        assert main(["color", col, "--colors", "2"]) == 20

    def test_solve_show_model(self, tmp_path, capsys):
        cnf_path = str(tmp_path / "t.cnf")
        with open(cnf_path, "w") as handle:
            handle.write("p cnf 2 2\n1 2 0\n-1 0\n")
        assert main(["solve", cnf_path, "--show"]) == 10
        out = capsys.readouterr().out
        assert "s SATISFIABLE" in out and "v " in out

    def test_solve_conflict_budget_exits_unknown(self, tmp_path, capsys):
        col = str(tmp_path / "g.col")
        cnf = str(tmp_path / "g.cnf")
        main(["extract", "alu2", "--scale", "0.55", "--width", "2",
              "--out", col])
        main(["encode", col, "--colors", "2", "--symmetry", "none",
              "--out", cnf])
        capsys.readouterr()
        assert main(["solve", cnf, "--conflict-budget", "1"]) == 0
        out = capsys.readouterr().out
        assert "s UNKNOWN" in out and "conflict budget" in out


class TestPortfolioCommand:
    def test_portfolio_routable(self, capsys):
        code = main(["portfolio", "alu2", "--scale", "0.55", "--width", "9"])
        assert code == 10
        out = capsys.readouterr().out
        assert "ROUTABLE" in out and "winner" in out

    def test_portfolio_budget_exits_unknown(self, capsys):
        # W=6 needs hundreds of conflicts to refute even with symmetry
        # breaking; every member must exhaust its 1-conflict budget.
        code = main(["portfolio", "alu2", "--scale", "0.55", "--width", "6",
                     "--conflict-budget", "1", "--members", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "UNDECIDED" in out


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["solve", "/nonexistent/file.cnf"]) == 2

    def test_bad_encoding_name(self, tmp_path, capsys):
        col = str(tmp_path / "g.col")
        with open(col, "w") as handle:
            handle.write("p edge 2 1\ne 1 2\n")
        assert main(["color", col, "--colors", "2",
                     "--encoding", "bogus"]) == 2


class TestAudit:
    """The `repro audit` command and the --faults/--chaos-seed hooks."""

    @pytest.fixture()
    def cycle5(self, tmp_path):
        col = str(tmp_path / "c5.col")
        with open(col, "w") as handle:
            handle.write("p edge 5 5\ne 1 2\ne 2 3\ne 3 4\ne 4 5\ne 5 1\n")
        return col

    @pytest.fixture(autouse=True)
    def _clean_fault_env(self):
        # --faults publishes via REPRO_FAULTS (so worker processes
        # inherit it); scrub it on both sides of every test.
        import os
        os.environ.pop("REPRO_FAULTS", None)
        yield
        os.environ.pop("REPRO_FAULTS", None)

    def test_audit_sat_passes(self, cycle5, capsys):
        assert main(["audit", cycle5, "--colors", "3",
                     "--encoding", "direct"]) == 10
        out = capsys.readouterr().out
        assert "SATISFIABLE" in out and "audit PASS" in out
        assert "model-satisfies-cnf: PASS" in out

    def test_audit_unsat_replays_proof(self, cycle5, capsys):
        assert main(["audit", cycle5, "--colors", "2",
                     "--encoding", "direct"]) == 20
        out = capsys.readouterr().out
        assert "UNSATISFIABLE" in out and "audit PASS" in out
        assert "proof-replay: PASS" in out

    def test_audit_flags_injected_wrong_model(self, cycle5, capsys):
        code = main(["audit", cycle5, "--colors", "3",
                     "--encoding", "direct",
                     "--faults", "seed=1; wrong_model"])
        # Caught either by the pipeline's own decode check (ERROR) or by
        # the audit (FAIL) — both exit 2, never a clean SAT code.
        assert code == 2
        out = capsys.readouterr().out
        assert ("audit FAIL" in out) or ("stopped:" in out)

    def test_chaos_seed_without_plan_warns(self, cycle5, capsys):
        assert main(["audit", cycle5, "--colors", "3",
                     "--encoding", "direct", "--chaos-seed", "9"]) == 10
        assert "nothing to seed" in capsys.readouterr().err

    def test_chaos_seed_reseeds_env_plan(self, cycle5, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@solver")
        code = main(["audit", cycle5, "--colors", "3",
                     "--encoding", "direct", "--chaos-seed", "5"])
        assert code == 2
        assert "stopped: solver crashed" in capsys.readouterr().out
        import os
        assert os.environ["REPRO_FAULTS"].startswith("seed=5")

    def test_malformed_col_is_a_usage_error(self, tmp_path, capsys):
        col = str(tmp_path / "bad.col")
        with open(col, "w") as handle:
            handle.write("p edge 2 1\ne 1 oops\n")
        assert main(["audit", col, "--colors", "2"]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err

    def test_color_with_engine_flag(self, cycle5, capsys):
        assert main(["color", cycle5, "--colors", "3",
                     "--engine", "legacy"]) == 10
        assert "SATISFIABLE" in capsys.readouterr().out
