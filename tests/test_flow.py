"""End-to-end detailed-routing flow tests (scaled-down benchmarks)."""

import pytest

from repro.core import Strategy
from repro.fpga import (detailed_route, is_legal, load_routing,
                        minimum_channel_width)

STRATEGY = Strategy("ITE-linear-2+muldirect", "s1")


@pytest.fixture(scope="module")
def alu2_routing():
    return load_routing("alu2", scale=0.7)


@pytest.fixture(scope="module")
def alu2_width(alu2_routing):
    return minimum_channel_width(alu2_routing, STRATEGY)


class TestDetailedRoute:
    def test_routable_at_minimum_width(self, alu2_routing, alu2_width):
        result = detailed_route(alu2_routing, alu2_width, STRATEGY)
        assert result.routable
        assert result.assignment is not None
        assert is_legal(result.assignment)
        assert result.width == alu2_width
        assert result.total_time > 0

    def test_unroutable_below_minimum(self, alu2_routing, alu2_width):
        assert alu2_width >= 2
        result = detailed_route(alu2_routing, alu2_width - 1, STRATEGY)
        assert not result.routable
        assert result.assignment is None

    def test_routable_with_slack(self, alu2_routing, alu2_width):
        result = detailed_route(alu2_routing, alu2_width + 2, STRATEGY)
        assert result.routable

    @pytest.mark.parametrize("encoding", ["muldirect", "log", "ITE-log",
                                          "direct-3+muldirect"])
    def test_width_agrees_across_encodings(self, alu2_routing, alu2_width,
                                           encoding):
        """The minimum width is a property of the problem, not the
        encoding: every encoding must agree at the boundary."""
        strategy = Strategy(encoding, "b1")
        assert not detailed_route(alu2_routing, alu2_width - 1,
                                  strategy).routable
        assert detailed_route(alu2_routing, alu2_width, strategy).routable


class TestMinimumWidth:
    def test_consistent_with_bounds(self, alu2_routing, alu2_width):
        from repro.coloring import clique_lower_bound, greedy_num_colors
        from repro.fpga import build_routing_csp
        graph = build_routing_csp(alu2_routing, 1).problem.graph
        assert clique_lower_bound(graph) <= alu2_width
        assert alu2_width <= greedy_num_colors(graph)

    def test_at_least_max_segment_usage(self, alu2_routing, alu2_width):
        assert alu2_width >= alu2_routing.max_segment_usage()

    def test_explicit_bracket(self, alu2_routing, alu2_width):
        narrowed = minimum_channel_width(alu2_routing, STRATEGY,
                                         lower=alu2_width, upper=alu2_width)
        assert narrowed == alu2_width
