"""Tests for the negotiation-based (PathFinder-style) baseline router."""

import pytest

from repro.core import Strategy
from repro.fpga import (Net, Netlist, PathFinderRouter, build_routing_csp,
                        detailed_route, is_legal, load_routing,
                        minimum_channel_width, negotiate_tracks,
                        route_netlist)


def contended_csp(width):
    nets = [Net(f"n{i}", (0, 0), ((3, 0),)) for i in range(3)]
    routing = route_netlist(Netlist("t", 4, 1, nets), congestion_penalty=0.0)
    return build_routing_csp(routing, width)


class TestNegotiation:
    def test_succeeds_with_enough_tracks(self):
        result = negotiate_tracks(contended_csp(3))
        assert result.success
        assert is_legal(result.assignment)
        assert result.iterations >= 1

    def test_gives_up_without_enough_tracks(self):
        result = negotiate_tracks(contended_csp(2), max_iterations=10)
        assert not result.success
        assert result.gave_up
        assert result.assignment is None
        assert result.iterations == 10
        # ...but this is NOT a proof: the SAT path gives one.
        sat_result = detailed_route(contended_csp(2).routing, 2,
                                    Strategy("ITE-log", "s1"))
        assert not sat_result.routable

    def test_overuse_history_recorded(self):
        result = negotiate_tracks(contended_csp(3))
        assert len(result.overused_history) == result.iterations
        assert result.overused_history[-1] == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PathFinderRouter(max_iterations=0)
        with pytest.raises(ValueError):
            PathFinderRouter(present_factor_growth=0.5)
        with pytest.raises(ValueError):
            PathFinderRouter(history_gain=-1)


class TestAgainstSAT:
    """On routable instances negotiation should usually succeed; on
    instances SAT proves unroutable it must never 'succeed'."""

    @pytest.fixture(scope="class")
    def instance(self):
        routing = load_routing("alu2", scale=0.7)
        width = minimum_channel_width(routing,
                                      Strategy("ITE-linear-2+muldirect", "s1"))
        return routing, width

    def test_succeeds_at_sat_minimum_plus_one(self, instance):
        routing, width = instance
        result = negotiate_tracks(build_routing_csp(routing, width + 1),
                                  max_iterations=200)
        assert result.success
        assert is_legal(result.assignment)

    def test_never_succeeds_below_sat_minimum(self, instance):
        routing, width = instance
        result = negotiate_tracks(build_routing_csp(routing, width - 1),
                                  max_iterations=30)
        assert not result.success

    def test_verified_when_successful(self, instance):
        routing, width = instance
        result = negotiate_tracks(build_routing_csp(routing, width + 2),
                                  max_iterations=200)
        if result.success:  # negotiation is heuristic; success expected here
            assert is_legal(result.assignment)
            assert set(result.assignment.tracks) == \
                set(range(routing.num_two_pin_nets))
