"""Tests for mixed-scheme hierarchy levels (paper §4's general form)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coloring import ColoringProblem, is_colorable
from repro.core.encodings import (DIRECT, ITE_LINEAR, ITE_LOG, Level,
                                  MULDIRECT, LOG, build_mixed_vertex_encoding,
                                  encode_mixed)
from repro.core.patterns import patterns_are_distinct
from repro.sat import solve
from .strategies import make_random_graph, small_graphs

SCHEMES = [DIRECT, MULDIRECT, LOG, ITE_LINEAR, ITE_LOG]


class TestConstruction:
    def test_subdomain_count_must_match(self):
        with pytest.raises(ValueError):
            build_mixed_vertex_encoding(9, Level(ITE_LOG, 2), [DIRECT])

    def test_top_needs_var_count(self):
        with pytest.raises(ValueError):
            build_mixed_vertex_encoding(9, Level(ITE_LOG, None),
                                        [DIRECT] * 4)

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            build_mixed_vertex_encoding(0, Level(ITE_LOG, 1), [DIRECT] * 2)

    def test_pattern_count_and_distinctness(self):
        vertex = build_mixed_vertex_encoding(
            11, Level(ITE_LOG, 2), [DIRECT, MULDIRECT, ITE_LINEAR, LOG])
        assert vertex.num_values == 11
        assert len(vertex.patterns) == 11
        assert patterns_are_distinct(vertex.patterns)

    def test_same_scheme_shares_block(self):
        # Both subdomains direct -> shared block == plain direct-?+direct.
        uniform = build_mixed_vertex_encoding(
            10, Level(ITE_LOG, 1), [DIRECT, DIRECT])
        assert uniform.num_vars == 1 + 5

    def test_distinct_schemes_get_distinct_blocks(self):
        mixed = build_mixed_vertex_encoding(
            10, Level(ITE_LOG, 1), [DIRECT, LOG])
        # 1 top var + direct block of 5 + log block of ceil(log2 5) = 3.
        assert mixed.num_vars == 1 + 5 + 3

    def test_ite_bottoms_add_no_structural_clauses(self):
        vertex = build_mixed_vertex_encoding(
            9, Level(ITE_LOG, 1), [ITE_LINEAR, ITE_LOG])
        assert vertex.clauses == []


class TestEquisatisfiability:
    def _check(self, graph, num_colors, bottoms, top=None):
        top = top or Level(ITE_LOG, 1)
        problem = ColoringProblem(graph, num_colors)
        declared = top.scheme.num_subdomains(top.num_vars)
        parts = min(declared, num_colors)
        encoded = encode_mixed(problem, top, bottoms[:parts])
        result = solve(encoded.cnf)
        expected = is_colorable(graph, num_colors)
        assert result.is_sat == expected
        if result.is_sat:
            assert problem.is_valid_coloring(encoded.decode(result.model))

    @pytest.mark.parametrize("bottom_a", SCHEMES, ids=lambda s: s.name)
    @pytest.mark.parametrize("bottom_b", SCHEMES, ids=lambda s: s.name)
    def test_all_scheme_pairs(self, bottom_a, bottom_b):
        graph = make_random_graph(6, 0.5, seed=13)
        for num_colors in (2, 3, 5):
            self._check(graph, num_colors, [bottom_a, bottom_b])

    def test_muldirect_top_with_mixed_bottoms(self):
        graph = make_random_graph(6, 0.6, seed=17)
        for num_colors in (3, 4, 6):
            self._check(graph, num_colors, [DIRECT, LOG, ITE_LINEAR],
                        top=Level(MULDIRECT, 3))

    @settings(max_examples=20, deadline=None)
    @given(graph=small_graphs(max_vertices=6),
           num_colors=st.integers(min_value=2, max_value=5),
           pick=st.tuples(st.sampled_from(SCHEMES),
                          st.sampled_from(SCHEMES),
                          st.sampled_from(SCHEMES),
                          st.sampled_from(SCHEMES)))
    def test_property(self, graph, num_colors, pick):
        self._check(graph, num_colors, list(pick), top=Level(ITE_LOG, 2))
