"""Tests for multi-pin decomposition and the congestion-aware router."""

import pytest

from repro.fpga import (CircuitSpec, FPGAArchitecture, GlobalRouter, Net,
                        Netlist, generate_netlist, route_netlist,
                        validate_global_routing)


def small_netlist():
    return Netlist("t", 4, 4, [
        Net("a", (0, 0), ((3, 3),)),
        Net("b", (0, 3), ((3, 0),)),
        Net("c", (1, 1), ((2, 1), (1, 2))),
    ])


class TestRouting:
    def test_all_two_pin_nets_present(self):
        routing = route_netlist(small_netlist())
        # net c has 2 sinks -> 2 two-pin nets; total 4
        assert routing.num_two_pin_nets == 4
        assert {t.net_index for t in routing.two_pin_nets} == {0, 1, 2}

    def test_routes_are_structurally_valid(self):
        routing = route_netlist(small_netlist())
        assert validate_global_routing(routing) == []

    def test_larger_random_circuit_valid(self):
        netlist = generate_netlist(CircuitSpec("c", 9, 9, 80, seed=21))
        routing = route_netlist(netlist)
        assert validate_global_routing(routing) == []

    def test_deterministic(self):
        netlist = generate_netlist(CircuitSpec("c", 6, 6, 30, seed=8))
        a = route_netlist(netlist)
        b = route_netlist(netlist)
        assert [t.segments for t in a.two_pin_nets] \
            == [t.segments for t in b.two_pin_nets]

    def test_grid_mismatch_rejected(self):
        router = GlobalRouter(FPGAArchitecture(3, 3))
        with pytest.raises(ValueError):
            router.route(Netlist("t", 4, 4, [Net("a", (0, 0), ((1, 1),))]))

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            GlobalRouter(FPGAArchitecture(3, 3), congestion_penalty=-1)

    def test_adjacent_blocks_share_channel(self):
        netlist = Netlist("t", 3, 3, [Net("a", (0, 0), ((1, 0),))])
        routing = route_netlist(netlist)
        route = routing.two_pin_nets[0]
        # A single shared channel segment suffices for abutting blocks.
        assert len(route.segments) == 1

    def test_route_length_bounded_by_distance(self):
        # Without congestion, a route should stay near-minimal.
        netlist = Netlist("t", 8, 8, [Net("a", (0, 0), ((7, 7),))])
        routing = route_netlist(netlist)
        assert routing.two_pin_nets[0].length <= 15

    def test_prim_decomposition_chains_nearby_sinks(self):
        # Sinks in a line: the second should connect from the first.
        netlist = Netlist("t", 8, 1, [Net("a", (0, 0), ((3, 0), (6, 0)))])
        routing = route_netlist(netlist)
        subnets = {t.subnet_index: t for t in routing.two_pin_nets}
        assert subnets[0].source == (0, 0) and subnets[0].sink == (3, 0)
        assert subnets[1].source == (3, 0) and subnets[1].sink == (6, 0)


class TestCongestion:
    def test_penalty_spreads_usage(self):
        # Many nets along one row: with a penalty, peak segment usage drops.
        nets = [Net(f"n{i}", (0, 0), ((5, 0),)) for i in range(6)]
        netlist = Netlist("t", 6, 3, nets)
        hot = route_netlist(netlist, congestion_penalty=0.0)
        spread = route_netlist(netlist, congestion_penalty=2.0)
        assert spread.max_segment_usage() <= hot.max_segment_usage()

    def test_segment_usage_counts_distinct_nets(self):
        # Two subnets of one net sharing a segment count once.
        netlist = Netlist("t", 5, 1, [Net("a", (0, 0), ((2, 0), (4, 0)))])
        routing = route_netlist(netlist, congestion_penalty=0.0)
        assert routing.max_segment_usage() == 1

    def test_usage_empty_routing(self):
        from repro.fpga.global_route import GlobalRouting
        routing = GlobalRouting(netlist=small_netlist(),
                                arch=FPGAArchitecture(4, 4))
        assert routing.max_segment_usage() == 0


class TestValidation:
    def test_detects_disconnected_route(self):
        routing = route_netlist(small_netlist())
        from dataclasses import replace
        from repro.fpga.arch import Segment
        broken = routing.two_pin_nets[0]
        far = Segment("h", 0, 0) if broken.segments[-1] != Segment("h", 0, 0) \
            else Segment("h", 3, 4)
        routing.two_pin_nets[0] = replace(
            broken, segments=broken.segments + (far,))
        assert validate_global_routing(routing) != []

    def test_detects_empty_route(self):
        routing = route_netlist(small_netlist())
        from dataclasses import replace
        routing.two_pin_nets[0] = replace(routing.two_pin_nets[0], segments=())
        violations = validate_global_routing(routing)
        assert any("empty route" in v for v in violations)
