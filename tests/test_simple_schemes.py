"""Tests for the log / direct / muldirect level schemes, including the
paper's Table 1 clause sets."""

import pytest

from repro.coloring import ColoringProblem, Graph
from repro.core.encodings import DIRECT, LOG, MULDIRECT, bits_needed, get_encoding


class TestBitsNeeded:
    @pytest.mark.parametrize("n,expected", [
        (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4),
    ])
    def test_values(self, n, expected):
        assert bits_needed(n) == expected

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            bits_needed(0)


class TestDirectScheme:
    def test_vars_and_patterns(self):
        assert DIRECT.num_vars(4) == 4
        assert DIRECT.patterns(4) == [(1,), (2,), (3,), (4,)]

    def test_structural_clauses(self):
        clauses = DIRECT.structural_clauses(3)
        assert (1, 2, 3) in clauses                      # at-least-one
        assert {(-1, -2), (-1, -3), (-2, -3)} <= set(clauses)  # at-most-one
        assert len(clauses) == 4

    def test_single_value_domain(self):
        assert DIRECT.patterns(1) == [(1,)]
        assert DIRECT.structural_clauses(1) == [(1,)]

    def test_subdomains(self):
        assert DIRECT.num_subdomains(3) == 3


class TestMuldirectScheme:
    def test_no_at_most_one(self):
        assert MULDIRECT.structural_clauses(3) == [(1, 2, 3)]

    def test_patterns_match_direct(self):
        assert MULDIRECT.patterns(5) == DIRECT.patterns(5)

    def test_subdomains(self):
        assert MULDIRECT.num_subdomains(3) == 3


class TestLogScheme:
    def test_vars(self):
        assert LOG.num_vars(3) == 2
        assert LOG.num_vars(4) == 2
        assert LOG.num_vars(5) == 3

    def test_patterns_are_binary(self):
        # value 0 -> 00, 1 -> 01 (bit0 set), 2 -> 10 (bit1 set)
        assert LOG.patterns(3) == [(-1, -2), (1, -2), (-1, 2)]

    def test_exclusion_clauses(self):
        # 3 values over 2 bits: pattern 11 is illegal.
        assert LOG.structural_clauses(3) == [(-1, -2)]

    def test_power_of_two_needs_no_exclusions(self):
        assert LOG.structural_clauses(4) == []

    def test_single_value_domain(self):
        assert LOG.num_vars(1) == 0
        assert LOG.patterns(1) == [()]
        assert LOG.structural_clauses(1) == []

    def test_subdomains(self):
        assert LOG.num_subdomains(2) == 4


class TestPaperTable1:
    """The exact clause sets of Table 1: two adjacent vertices v and w,
    domain {0, 1, 2}.  Vertex v owns variables 1..b, w owns b+1..2b."""

    def _clauses(self, encoding_name):
        problem = ColoringProblem(Graph(2, [(0, 1)]), 3)
        encoded = get_encoding(encoding_name).encode(problem)
        return {tuple(sorted(c)) for c in encoded.cnf.clauses}

    def test_log_clauses(self):
        # l_v1 = var1 (bit0), l_v2 = var2 (bit1), same for w (vars 3, 4).
        expected = {
            # conflict clauses, one per common value
            (1, 2, 3, 4),            # value 0 (00 vs 00)
            (-1, 2, -3, 4),          # value 1 (01 vs 01)
            (1, -2, 3, -4),          # value 2 (10 vs 10)
            # excluded illegal value 11 for each vertex
            (-2, -1), (-4, -3),
        }
        assert self._clauses("log") == {tuple(sorted(c)) for c in expected}

    def test_direct_clauses(self):
        expected = {
            (1, 2, 3), (4, 5, 6),                     # at-least-one
            (-2, -1), (-3, -1), (-3, -2),             # at-most-one v
            (-5, -4), (-6, -4), (-6, -5),             # at-most-one w
            (-4, -1), (-5, -2), (-6, -3),             # conflicts
        }
        assert self._clauses("direct") == {tuple(sorted(c)) for c in expected}

    def test_muldirect_clauses(self):
        expected = {
            (1, 2, 3), (4, 5, 6),
            (-4, -1), (-5, -2), (-6, -3),
        }
        assert self._clauses("muldirect") == {tuple(sorted(c)) for c in expected}

    def test_muldirect_is_direct_minus_at_most_one(self):
        direct = self._clauses("direct")
        muldirect = self._clauses("muldirect")
        assert muldirect < direct
        assert direct - muldirect == {(-2, -1), (-3, -1), (-3, -2),
                                      (-5, -4), (-6, -4), (-6, -5)}
