"""Tests for the instance/formula analysis helpers."""

import pytest

from repro.coloring import ColoringProblem, complete_graph, Graph
from repro.core.analysis import (FormulaStats, GraphStats, compare_encodings,
                                 encoding_profile)
from repro.sat import CNF


class TestFormulaStats:
    def test_basic(self):
        stats = FormulaStats.of(CNF([[1, 2], [3], [1, -2, 3]]))
        assert stats.num_clauses == 3
        assert stats.num_literals == 6
        assert stats.min_clause_len == 1
        assert stats.max_clause_len == 3
        assert stats.mean_clause_len == 2.0
        assert stats.clause_length_histogram == {1: 1, 2: 1, 3: 1}

    def test_empty_formula(self):
        stats = FormulaStats.of(CNF(num_vars=3))
        assert stats.num_clauses == 0
        assert stats.mean_clause_len == 0.0


class TestGraphStats:
    def test_complete_graph(self):
        stats = GraphStats.of(complete_graph(5))
        assert stats.density == 1.0
        assert stats.max_degree == 4
        assert stats.clique_lower_bound == 5
        assert stats.greedy_upper_bound == 5
        assert stats.hardness_window == (5, 5)

    def test_empty_graph(self):
        stats = GraphStats.of(Graph(0))
        assert stats.num_vertices == 0
        assert stats.density == 0.0

    def test_mycielski_window_is_open(self):
        from repro.coloring.instances import mycielski_graph
        stats = GraphStats.of(mycielski_graph(4))
        low, high = stats.hardness_window
        assert low == 2
        assert high >= 4


class TestEncodingComparison:
    def test_compare_encodings(self):
        problem = ColoringProblem(complete_graph(5), 4)
        stats = compare_encodings(problem, ["muldirect", "log", "ITE-log"])
        assert stats["log"].num_vars < stats["muldirect"].num_vars
        assert stats["ITE-log"].num_clauses < stats["muldirect"].num_clauses

    def test_encoding_profile(self):
        profile = encoding_profile("ITE-linear", 8)
        assert profile["vars_per_vertex"] == 7
        assert profile["structural_clauses"] == 0
        assert profile["max_pattern_len"] == 7
        assert profile["min_pattern_len"] == 1

    def test_hierarchical_profile(self):
        profile = encoding_profile("muldirect-3+muldirect", 9)
        assert profile["vars_per_vertex"] == 6
        assert profile["mean_pattern_len"] == 2.0
