"""The durable request journal (repro.serve.journal)."""

import json
import os

import pytest

from repro.reliability.faults import FaultPlan
from repro.serve.journal import (MAX_RECOVERY_ATTEMPTS, PendingEntry,
                                 RequestJournal, _segment_name)


def wire(n):
    return {"colors": 3, "tag": f"req-{n}"}


def digest(n):
    return f"{n:064x}"


class TestWriteAheadSemantics:
    def test_admit_then_done_leaves_nothing_pending(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
            journal.record_done(digest(1))
            assert journal.pending() == []

    def test_unfinished_admit_is_pending(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
            journal.record_admit(digest(2), wire(2))
            journal.record_done(digest(1))
            pending = journal.pending()
            assert [entry.digest for entry in pending] == [digest(2)]
            assert pending[0].request == wire(2)
            assert pending[0].attempts == 0

    def test_pending_survives_reopen(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
        # A fresh instance over the same directory — the crashed-server
        # boot path — sees the unfinished entry.
        with RequestJournal(str(tmp_path)) as journal:
            pending = journal.pending()
            assert [entry.digest for entry in pending] == [digest(1)]

    def test_attempts_accumulate_across_boots(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
            journal.record_attempt(digest(1))
        with RequestJournal(str(tmp_path)) as journal:
            assert journal.pending()[0].attempts == 1
            journal.record_attempt(digest(1))
            assert journal.pending()[0].attempts == 2
            assert journal.pending()[0].attempts >= MAX_RECOVERY_ATTEMPTS

    def test_duplicate_admits_collapse(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
            journal.record_admit(digest(1), wire(1))
            assert len(journal.pending()) == 1


class TestPoison:
    def test_poisoned_entries_are_excluded(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
            journal.record_poison(digest(1), "crashed recovery twice")
            assert journal.pending() == []
            assert journal.poisoned() == {digest(1):
                                          "crashed recovery twice"}
            included = journal.pending(include_poisoned=True)
            assert [entry.digest for entry in included] == [digest(1)]

    def test_poison_survives_rotation_and_reopen(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
            journal.record_poison(digest(1), "bad")
            journal.rotate()
        with RequestJournal(str(tmp_path)) as journal:
            assert journal.pending() == []
            assert digest(1) in journal.poisoned()


class TestRotation:
    def test_rotation_carries_pending_forward(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
            journal.record_admit(digest(2), wire(2))
            journal.record_done(digest(1))
            journal.record_attempt(digest(2))
            journal.rotate()
            pending = journal.pending()
            assert [entry.digest for entry in pending] == [digest(2)]
            assert pending[0].attempts == 1  # attempts survive rotation
        # Only the fresh segment remains on disk.
        segments = [name for name in os.listdir(str(tmp_path))
                    if name.startswith("journal-")]
        assert len(segments) == 1

    def test_auto_rotation_at_segment_cap(self, tmp_path):
        journal = RequestJournal(str(tmp_path), segment_max_bytes=512)
        for n in range(20):
            journal.record_admit(digest(n), wire(n))
            journal.record_done(digest(n))
        assert journal.rotations >= 1
        assert journal.pending() == []
        journal.close()

    def test_compacted_journal_is_small(self, tmp_path):
        journal = RequestJournal(str(tmp_path))
        for n in range(50):
            journal.record_admit(digest(n), wire(n))
            journal.record_done(digest(n))
        journal.compact()
        total = sum(os.path.getsize(os.path.join(str(tmp_path), name))
                    for name in os.listdir(str(tmp_path)))
        assert total < 1024  # all admit/done noise dropped
        journal.close()


class TestTornTails:
    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
            path = os.path.join(str(tmp_path), _segment_name(journal._seq))
        # Simulate power loss mid-append: garbage half-record at the
        # tail of the active segment.
        with open(path, "ab") as stream:
            stream.write(b'{"type": "admit", "digest": "dead')
        with RequestJournal(str(tmp_path)) as journal:
            pending = journal.pending()
            assert [entry.digest for entry in pending] == [digest(1)]
            assert journal.torn_lines >= 1

    def test_injected_torn_write_loses_only_that_record(self, tmp_path):
        plan = FaultPlan.parse("seed=1; journal_torn_write@journal:"
                               "p=1,max=1")
        with RequestJournal(str(tmp_path), faults=plan) as journal:
            journal.record_admit(digest(1), wire(1))  # torn: lost
            journal.record_admit(digest(2), wire(2))  # durable
            pending = journal.pending()
            assert [entry.digest for entry in pending] == [digest(2)]


class TestHygiene:
    def test_counts_shape(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
            counts = journal.counts()
            assert counts["appends"] == 1
            assert counts["pending"] == 1
            assert counts["poisoned"] == 0

    def test_records_are_json_lines(self, tmp_path):
        with RequestJournal(str(tmp_path)) as journal:
            journal.record_admit(digest(1), wire(1))
            journal.record_done(digest(1))
            path = os.path.join(str(tmp_path), _segment_name(journal._seq))
        with open(path, "rb") as stream:
            for line in stream:
                record = json.loads(line)
                assert record["type"] in ("admit", "done")
