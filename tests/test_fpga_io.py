"""Tests for netlist/routing/track-assignment serialisation."""

import pytest

from repro.fpga import (Net, Netlist, assignment_from_coloring,
                        assignment_from_json, assignment_to_json,
                        build_routing_csp, load_netlist, netlist_from_json,
                        netlist_to_json, route_netlist, routing_from_text,
                        routing_to_text, validate_global_routing)


@pytest.fixture
def netlist():
    return Netlist("demo", 4, 3, [
        Net("a", (0, 0), ((3, 2),)),
        Net("b", (1, 1), ((2, 0), (0, 2))),
    ])


class TestNetlistJson:
    def test_round_trip(self, netlist):
        parsed = netlist_from_json(netlist_to_json(netlist))
        assert parsed.name == netlist.name
        assert parsed.cols == netlist.cols and parsed.rows == netlist.rows
        assert [(n.name, n.source, n.sinks) for n in parsed.nets] \
            == [(n.name, n.source, n.sinks) for n in netlist.nets]

    def test_benchmark_round_trip(self):
        netlist = load_netlist("alu2", scale=0.6)
        parsed = netlist_from_json(netlist_to_json(netlist))
        assert parsed.num_nets == netlist.num_nets

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            netlist_from_json('{"format": "something-else"}')

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError):
            netlist_from_json(
                '{"format": "repro-netlist", "version": 99}')

    def test_file_round_trip(self, netlist, tmp_path):
        from repro.fpga import read_netlist, write_netlist
        path = str(tmp_path / "n.json")
        write_netlist(netlist, path)
        assert read_netlist(path).num_nets == netlist.num_nets


class TestRoutingText:
    def test_round_trip(self, netlist):
        routing = route_netlist(netlist)
        parsed = routing_from_text(routing_to_text(routing), netlist)
        assert parsed.num_two_pin_nets == routing.num_two_pin_nets
        assert [t.segments for t in parsed.two_pin_nets] \
            == [t.segments for t in routing.two_pin_nets]
        assert validate_global_routing(parsed) == []

    def test_grid_mismatch_rejected(self, netlist):
        routing = route_netlist(netlist)
        other = Netlist("other", 5, 5, [Net("a", (0, 0), ((1, 1),))])
        with pytest.raises(ValueError):
            routing_from_text(routing_to_text(routing), other)

    def test_missing_grid_rejected(self, netlist):
        with pytest.raises(ValueError):
            routing_from_text("net 0 0 0 0 1 1 : h0.0\n", netlist)

    def test_net_before_grid_rejected(self, netlist):
        text = "net 0 0 0 0 1 1 : h0.0\ngrid 4 3\n"
        with pytest.raises(ValueError):
            routing_from_text(text, netlist)

    def test_malformed_segment_rejected(self, netlist):
        text = "grid 4 3\nnet 0 0 0 0 1 1 : hXY\n"
        with pytest.raises(ValueError):
            routing_from_text(text, netlist)

    def test_comments_ignored(self, netlist):
        routing = route_netlist(netlist)
        text = "# hello\n" + routing_to_text(routing)
        parsed = routing_from_text(text, netlist)
        assert parsed.num_two_pin_nets == routing.num_two_pin_nets


class TestAssignmentJson:
    def test_round_trip(self, netlist):
        routing = route_netlist(netlist)
        csp = build_routing_csp(routing, 3)
        from repro.core import Strategy, solve_coloring
        outcome = solve_coloring(csp.problem, Strategy("ITE-log", "s1"))
        assert outcome.is_sat
        assignment = assignment_from_coloring(csp, outcome.coloring)
        parsed = assignment_from_json(assignment_to_json(assignment), routing)
        assert parsed.tracks == assignment.tracks
        assert parsed.width == assignment.width

    def test_unknown_net_rejected(self, netlist):
        routing = route_netlist(netlist)
        text = ('{"format": "repro-tracks", "version": 1, "width": 2, '
                '"tracks": {"bogus.0": 1}}')
        with pytest.raises(ValueError):
            assignment_from_json(text, routing)

    def test_wrong_format_rejected(self, netlist):
        routing = route_netlist(netlist)
        with pytest.raises(ValueError):
            assignment_from_json('{"format": "x"}', routing)
