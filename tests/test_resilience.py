"""Resilience primitives (repro.serve.resilience) and their wiring.

Watchdog / heartbeat / retry / breaker units run against fake clocks
and plain ``queue.Queue`` channels — no processes, no sleeps beyond the
heartbeat thread's own cadence.  The end-to-end classes boot a real
service on a loopback port and exercise the failure paths the chaos
suite hits at larger scale: a dropped connection under a retrying
client, a dead server tripping the circuit breaker, and a crashed
worker forcing a pool rebuild.
"""

import os
import queue
import signal
import socket
import time

import pytest

from repro.api import SolveRequest
from repro.reliability.faults import FaultPlan
from repro.reliability.quarantine import QuarantinePolicy
from repro.sat.status import SolveStatus
from repro.serve import (AdmissionController, AdmissionPolicy,
                         CircuitBreaker, CircuitOpenError, JobHeartbeat,
                         ResilientClient, RetryPolicy, ServeClient,
                         ServeRejected, WorkerWatchdog)
from tests.test_serve import start_service, triangle


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_watchdog(**kwargs):
    clock = FakeClock()
    kills = []
    channel = queue.Queue()
    watchdog = WorkerWatchdog(
        channel=channel, interval=0.5,
        kill=lambda pid, sig: kills.append((pid, sig)),
        clock=clock, **kwargs)
    return watchdog, channel, clock, kills


class TestWorkerWatchdog:
    def test_overdue_job_is_killed_once(self):
        watchdog, channel, clock, kills = make_watchdog()
        watchdog.register("job#1:abc", deadline=2.0)
        channel.put(("start", "job#1:abc", 4242, 0.0))
        assert watchdog.poll() == []
        # Past the budget but inside the grace window: still tolerated.
        clock.advance(2.0 + watchdog.grace)
        assert watchdog.poll() == []
        # Heartbeats cannot save an overdue job — the stall *is* the
        # job, and the deadline check is what catches it.
        channel.put(("beat", "job#1:abc", 4242, 0.0))
        clock.advance(0.1)
        assert watchdog.poll() == ["job#1:abc"]
        assert kills == [(4242, signal.SIGKILL)]
        token, reason = watchdog.kill_log[-1]
        assert token == "job#1:abc" and "overdue" in reason
        # Idempotent: the corpse is not killed again next sweep.
        clock.advance(10.0)
        assert watchdog.poll() == [] and watchdog.kills == 1

    def test_stale_worker_is_killed_without_a_deadline(self):
        watchdog, channel, clock, kills = make_watchdog()
        watchdog.register("t", deadline=None)
        channel.put(("start", "t", 77, 0.0))
        watchdog.poll()
        clock.advance(watchdog.stale_after + 0.1)
        assert watchdog.poll() == ["t"]
        assert kills == [(77, signal.SIGKILL)]
        assert "stale" in watchdog.kill_log[-1][1]

    def test_heartbeats_keep_an_unbudgeted_job_alive(self):
        watchdog, channel, clock, kills = make_watchdog()
        watchdog.register("t", deadline=None)
        channel.put(("start", "t", 9, 0.0))
        watchdog.poll()
        for _ in range(20):
            clock.advance(watchdog.stale_after / 2)
            channel.put(("beat", "t", 9, 0.0))
            assert watchdog.poll() == []
        assert kills == []

    def test_finished_job_is_no_longer_watched(self):
        watchdog, channel, clock, kills = make_watchdog()
        watchdog.register("t", deadline=1.0)
        channel.put(("start", "t", 9, 0.0))
        watchdog.poll()
        watchdog.finished("t")
        clock.advance(100.0)
        channel.put(("beat", "t", 9, 0.0))  # a late beat is noise
        assert watchdog.poll() == []
        assert kills == [] and watchdog.active_pids() == []

    def test_job_without_heartbeat_is_never_killed(self):
        # No start record ever arrived (pool queue backlog): there is
        # no pid to kill and no evidence of a wedge — leave it be.
        watchdog, channel, clock, kills = make_watchdog()
        watchdog.register("t", deadline=0.5)
        clock.advance(1000.0)
        assert watchdog.poll() == [] and kills == []

    def test_malformed_heartbeat_records_are_ignored(self):
        watchdog, channel, clock, kills = make_watchdog()
        watchdog.register("t", deadline=None)
        channel.put(None)
        channel.put((1,))
        channel.put(("beat",))
        channel.put(("start", "t", 9, 0.0))
        watchdog.poll()  # must not raise
        assert watchdog.active_pids() == [9]

    def test_kill_active_hits_every_registered_worker(self):
        watchdog, channel, clock, kills = make_watchdog()
        watchdog.register("a", deadline=None)
        watchdog.register("b", deadline=None)
        channel.put(("start", "a", 1, 0.0))
        channel.put(("start", "b", 2, 0.0))
        watchdog.poll()
        assert watchdog.kill_active() == 2
        assert sorted(pid for pid, _ in kills) == [1, 2]
        assert watchdog.kill_active() == 0  # already dead

    def test_snapshot_shape(self):
        watchdog, channel, clock, kills = make_watchdog()
        watchdog.register("t", deadline=0.5)
        channel.put(("start", "t", 9, 0.0))
        watchdog.poll()
        clock.advance(0.5 + watchdog.grace + 0.1)
        watchdog.poll()
        snapshot = watchdog.snapshot()
        assert snapshot["kills"] == 1
        assert snapshot["last_kill"]["token"] == "t"
        assert "overdue" in snapshot["last_kill"]["reason"]
        assert snapshot["interval"] == 0.5


class TestJobHeartbeat:
    def test_emits_start_then_beats(self):
        channel = queue.Queue()
        with JobHeartbeat(channel, "tok", interval=0.01):
            time.sleep(0.1)
        records = []
        while True:
            try:
                records.append(channel.get_nowait())
            except queue.Empty:
                break
        kind, token, pid, _ = records[0]
        assert kind == "start" and token == "tok" and pid == os.getpid()
        assert any(record[0] == "beat" for record in records[1:])

    def test_none_channel_is_a_noop(self):
        with JobHeartbeat(None, "tok", interval=0.01):
            pass  # no channel, no thread, no crash


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_backoff=0.1, backoff_factor=2.0,
                             max_backoff=0.5, jitter=0.0)
        assert [policy.backoff(n) for n in range(1, 6)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_deterministic_per_seed_and_bounded(self):
        policy = RetryPolicy(jitter=0.5, seed=42)
        first = [policy.backoff(n, policy.rng()) for n in range(1, 6)]
        second = [policy.backoff(n, policy.rng()) for n in range(1, 6)]
        assert first == second  # seeded: chaos runs reproduce
        for attempt, duration in enumerate(first, start=1):
            nominal = min(policy.base_backoff
                          * policy.backoff_factor ** (attempt - 1),
                          policy.max_backoff)
            assert 0.5 * nominal <= duration <= 1.5 * nominal

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-1.0)


class TestCircuitBreaker:
    def test_closed_to_open_to_half_open_to_closed(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                                 clock=clock)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()  # third consecutive failure: trip
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.remaining_cooldown() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()       # the single probe slot
        assert not breaker.allow()   # a probe is already in flight
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.remaining_cooldown() == pytest.approx(5.0)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two in a row

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)


class TestQuarantineDecay:
    def test_interleaved_successes_keep_resetting_offences(self):
        controller = AdmissionController(AdmissionPolicy(
            quarantine=QuarantinePolicy(threshold=2, base_backoff=60.0)))
        # ERROR, success, ERROR, success, ... — the streak never
        # reaches the threshold, so the client is never locked out.
        for _ in range(4):
            assert controller.admit("alice", 3).admitted
            controller.begin("alice")
            controller.finish("alice", SolveStatus.ERROR, "worker crash")
            assert controller.admit("alice", 3).admitted
            controller.begin("alice")
            controller.finish("alice", SolveStatus.SAT)
        # Two *consecutive* errors do trip the quarantine.
        for _ in range(2):
            assert controller.admit("alice", 3).admitted
            controller.begin("alice")
            controller.finish("alice", SolveStatus.ERROR, "worker crash")
        decision = controller.admit("alice", 3)
        assert not decision.admitted and "quarantined" in decision.reason


def free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestResilientClientEndToEnd:
    def test_retries_through_a_dropped_connection(self):
        # The server drops every exchange on its first accepted
        # connection (deterministic: the injector label is conn#1);
        # the retrying client must reconnect and land the solve.
        service, thread = start_service(
            port=0, workers=1,
            faults=FaultPlan.parse("seed=3; conn_drop@conn:match=conn#1"))
        try:
            with ResilientClient(
                    port=service.port,
                    retry=RetryPolicy(max_attempts=4, base_backoff=0.01,
                                      max_backoff=0.05, seed=1)) as client:
                response = client.solve(
                    SolveRequest(graph=triangle(), colors=3))
                assert response.status is SolveStatus.SAT
                assert client.retries >= 1
                assert client.reconnects >= 2
                assert client.breaker.state == "closed"
        finally:
            with ServeClient(port=service.port) as client:
                client.shutdown()
            thread.join(timeout=30)
            assert not thread.is_alive()

    def test_circuit_opens_against_a_dead_server(self):
        client = ResilientClient(
            port=free_port(), connect_timeout=0.5,
            retry=RetryPolicy(max_attempts=6, base_backoff=0.001,
                              max_backoff=0.002, jitter=0.0),
            breaker=CircuitBreaker(failure_threshold=2,
                                   reset_timeout=60.0))
        # Attempts 1 and 2 fail on connect, tripping the breaker;
        # attempt 3 is refused by the open circuit — fail fast, well
        # before the retry budget runs out.
        with pytest.raises(CircuitOpenError):
            client.ping()
        assert client.breaker.state == "open"
        assert client.attempts == 3

    def test_rejection_is_not_a_transport_failure(self):
        service, thread = start_service(
            port=0, workers=1,
            policy=AdmissionPolicy(max_vertices=2))
        try:
            with ResilientClient(
                    port=service.port,
                    retry=RetryPolicy(max_attempts=3, base_backoff=0.01),
                    breaker=CircuitBreaker(failure_threshold=1)) as client:
                with pytest.raises(ServeRejected, match="vertices"):
                    client.solve(SolveRequest(graph=triangle(), colors=3))
                # One attempt, no retries, breaker untouched: the
                # server answered, it just said no.
                assert client.attempts == 1 and client.retries == 0
                assert client.breaker.state == "closed"
        finally:
            with ServeClient(port=service.port) as client:
                client.shutdown()
            thread.join(timeout=30)

    def test_worker_crash_rebuilds_pool_and_service_recovers(
            self, monkeypatch):
        # job#1 dies via os._exit inside the pool (satellite d): the
        # future fails with BrokenProcessPool, the server answers
        # ERROR, rebuilds the pool, and the next job runs normally —
        # one offence stays under the quarantine threshold of 2.
        monkeypatch.setenv("REPRO_FAULTS",
                           "seed=2; crash@serve_worker:match=job#1:*")
        service, thread = start_service(port=0, workers=1)
        try:
            monkeypatch.delenv("REPRO_FAULTS")
            with ServeClient(port=service.port) as client:
                first = client.solve(
                    SolveRequest(graph=triangle(), colors=3))
                assert first.status is SolveStatus.ERROR
                second = client.solve(
                    SolveRequest(graph=triangle(), colors=2))
                assert second.status is SolveStatus.UNSAT
                counters = client.metrics()["metrics"]["counters"]
                assert counters["serve.pool_rebuilds"] == 1
                assert counters["serve.jobs.ERROR"] == 1
        finally:
            with ServeClient(port=service.port) as client:
                client.shutdown()
            thread.join(timeout=30)
            assert not thread.is_alive()
