"""Ablation — encoding size scaling (§2/§3/§4 trade-offs).

How do variables-per-vertex, clause count and average conflict-clause
length scale with the number of colors K under each encoding family?
This is the structural mechanism behind Table 2: hierarchical encodings
shrink the variable count (vs direct/muldirect) while keeping conflict
clauses short (vs ITE-linear), and ITE encodings drop all structural
clauses.
"""

from __future__ import annotations

from repro.bench import render_simple_table
from repro.coloring import ColoringProblem, complete_graph
from repro.core import ALL_ENCODINGS, get_encoding
from .conftest import publish

COLOR_COUNTS = [4, 8, 12, 16]


def _stats(encoding_name: str, num_colors: int):
    problem = ColoringProblem(complete_graph(6), num_colors)
    encoded = get_encoding(encoding_name).encode(problem)
    # Structural clauses come first in the CNF (one block per vertex),
    # followed by the conflict clauses.
    structural = len(encoded.vertex_encoding.clauses) * 6
    conflict_lengths = [len(clause)
                        for clause in encoded.cnf.clauses[structural:]]
    mean_len = (sum(conflict_lengths) / len(conflict_lengths)
                if conflict_lengths else 0.0)
    return encoded.vars_per_vertex, encoded.cnf.num_clauses, mean_len


def test_encoding_size_scaling(benchmark):
    def measure():
        table = {}
        for name in ALL_ENCODINGS:
            for k in COLOR_COUNTS:
                table[(name, k)] = _stats(name, k)
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)

    header = ["encoding"] + [f"K={k} (vars/cls/len)" for k in COLOR_COUNTS]
    rows = []
    for name in ALL_ENCODINGS:
        row = [name]
        for k in COLOR_COUNTS:
            vars_per_vertex, clauses, mean_len = table[(name, k)]
            row.append(f"{vars_per_vertex}/{clauses}/{mean_len:.1f}")
        rows.append(row)
    publish("ablation_sizes", render_simple_table(
        "Encoding size scaling on K6 (per vertex vars / total clauses / "
        "mean conflict-clause length)", header, rows))

    for k in COLOR_COUNTS:
        # log and ITE-log spend logarithmically many variables...
        assert table[("log", k)][0] == table[("ITE-log", k)][0]
        # ...direct/muldirect spend K...
        assert table[("direct", k)][0] == k
        # ...and 2-level hybrids sit strictly in between for K >= 8.
        if k >= 8:
            hybrid = table[("ITE-linear-2+muldirect", k)][0]
            assert table[("ITE-log", k)][0] < hybrid < k
        # ITE-linear conflict clauses grow with K (its known weakness).
        assert table[("ITE-linear", k)][2] >= table[("ITE-log", k)][2]


def test_hierarchy_depth_tradeoff(benchmark):
    """Deeper hierarchies trade fewer variables for longer patterns —
    measured on a 16-color domain."""
    specs = ["muldirect", "muldirect-3+muldirect",
             "muldirect-2+muldirect-2+muldirect"]

    def measure():
        out = {}
        for name in specs:
            vertex = get_encoding(name).vertex_encoding(16)
            mean_pattern = sum(len(p) for p in vertex.patterns) / 16
            out[name] = (vertex.num_vars, mean_pattern)
        return out

    result = benchmark.pedantic(measure, rounds=3, iterations=1)
    rows = [[name, str(v), f"{l:.2f}"]
            for name, (v, l) in result.items()]
    publish("ablation_hierarchy_depth", render_simple_table(
        "Hierarchy depth on a 16-color domain",
        ["encoding", "vars/vertex", "mean pattern length"], rows))

    vars_by_depth = [result[name][0] for name in specs]
    lens_by_depth = [result[name][1] for name in specs]
    assert vars_by_depth[0] > vars_by_depth[1] > vars_by_depth[2]
    assert lens_by_depth[0] < lens_by_depth[1] < lens_by_depth[2]
