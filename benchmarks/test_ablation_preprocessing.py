"""Ablation — CNF preprocessing on routing formulas.

Measures how much root unit propagation (fed by the symmetry-breaking
units), pure literals and subsumption shrink the encoded formulas, and
what that does to end-to-end solve time.
"""

from __future__ import annotations

import time

from repro.bench import render_simple_table
from repro.core import Strategy, get_encoding
from repro.core.symmetry import apply_symmetry
from repro.sat import solve
from repro.sat.simplify import simplify, solve_simplified
from .conftest import publish

ENCODINGS = ["muldirect", "direct-3+muldirect", "ITE-linear-2+muldirect"]


def test_preprocessing_shrinks_routing_formulas(benchmark,
                                                unroutable_instances):
    instance = unroutable_instances[min(2, len(unroutable_instances) - 1)]
    problem = instance.csp.problem

    def run():
        rows = []
        for name in ENCODINGS:
            encoded = get_encoding(name).encode(problem)
            apply_symmetry(encoded, "s1")
            result = simplify(encoded.cnf)
            start = time.perf_counter()
            plain = solve(encoded.cnf,
                          Strategy(name, "s1").solver_config())
            plain_time = time.perf_counter() - start
            start = time.perf_counter()
            preprocessed = solve_simplified(
                encoded.cnf, Strategy(name, "s1").solver_config())
            preprocessed_time = time.perf_counter() - start
            assert not plain.satisfiable
            assert not preprocessed.satisfiable
            rows.append([name,
                         str(result.stats["original_clauses"]),
                         str(result.stats["final_clauses"]),
                         str(result.stats["forced_units"]),
                         str(result.stats.get("subsumed", 0)),
                         f"{plain_time:.3f}",
                         f"{preprocessed_time:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_preprocessing", render_simple_table(
        f"Preprocessing on {instance.name} @ W={instance.width} (UNSAT)",
        ["encoding", "clauses", "after", "units", "subsumed",
         "solve [s]", "preproc+solve [s]"], rows))
    for row in rows:
        assert int(row[2]) <= int(row[1])
