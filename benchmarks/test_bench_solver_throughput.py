"""Solver BCP throughput — arena engine vs the retained legacy engine.

Runs the same-process before/after comparison from
:mod:`repro.bench.throughput` and writes the ``BENCH_solver.json``
artifact at the repository root.  The acceptance bar for the arena
rewrite is a >= 1.5x propagation-throughput speedup on the
propagation-only stress suite, with bit-identical search trajectories.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.throughput import run_throughput_bench, write_report

from .conftest import publish

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_bcp_throughput(benchmark):
    payload = benchmark.pedantic(
        lambda: run_throughput_bench(), rounds=1, iterations=1)
    write_report(str(REPO_ROOT / "BENCH_solver.json"), payload)

    lines = [f"headline BCP speedup (arena over legacy): "
             f"{payload['headline_bcp_speedup']}x",
             f"stress suite props/sec: arena "
             f"{payload['stress_arena_props_per_sec']:,} vs legacy "
             f"{payload['stress_legacy_props_per_sec']:,}"]
    for record in payload["stress_suite"] + payload.get("context_suite", []):
        lines.append(
            f"  {record['name']}: {record['speedup']}x ({record['sanity']})")
    publish("solver_throughput", "\n".join(lines))

    for record in payload["stress_suite"] + payload.get("context_suite", []):
        assert record["sanity"] == "identical trajectories"
    assert payload["headline_bcp_speedup"] >= 1.5
