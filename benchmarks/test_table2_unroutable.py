"""Table 2 — the paper's headline experiment.

Total CPU time (graph-coloring generation + CNF translation + SAT
solving) on the eight challenging **unroutable** configurations, for the
muldirect baseline (no symmetry / b1 / s1) and the six best new encodings
(each with b1 and s1), plus the speedup row relative to muldirect without
symmetry breaking.

Paper numbers for orientation: muldirect/none total 1,531,524 s;
ITE-linear-2+muldirect/s1 total 1,344 s (1,139×); max individual speedup
9,499× (vda, ITE-linear-2+direct/s1).  Our substrate is a pure-Python CDCL
on scaled-down synthetic circuits, so absolute numbers are ~10^3 smaller;
the claims under test are the *shape*: the baseline loses by orders of
magnitude, symmetry breaking is a large multiplier, and the hierarchical /
ITE encodings dominate.
"""

from __future__ import annotations

from repro.bench import render_simple_table, render_table, sweep
from repro.core import Strategy, get_encoding
from .conftest import publish

#: Table 2's strategy columns: muldirect × {-, b1, s1}; best six new
#: encodings × {b1, s1}; plus the expanded rerun's new-family columns
#: (partial-order POP / POP-H and the commander-AMO direct encoding,
#: each with s1 — the configuration the modern literature reports).
TABLE2_STRATEGIES = (
    [Strategy("muldirect", sym) for sym in ("none", "b1", "s1")]
    + [Strategy(encoding, sym)
       for encoding in ("ITE-linear", "ITE-log", "ITE-linear-2+direct",
                        "ITE-linear-2+muldirect", "muldirect-3+muldirect",
                        "direct-3+muldirect")
       for sym in ("b1", "s1")]
    + [Strategy(encoding, "s1")
       for encoding in ("pop", "pop-h", "cmddirect")]
)

REFERENCE = "muldirect"  # muldirect without symmetry breaking


def test_table2_total_times(benchmark, unroutable_instances):
    def run():
        return sweep(unroutable_instances, TABLE2_STRATEGIES,
                     expect_satisfiable=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    columns = [s.label for s in TABLE2_STRATEGIES]
    widths = {i.name: i.width for i in unroutable_instances}
    title = ("Table 2 — total CPU time [s] on unroutable configurations "
             + str({name: f"W={w}" for name, w in widths.items()}))
    publish("table2", render_table(
        title, result.instances, columns, result.time_cells(),
        reference_column=REFERENCE))
    from .conftest import RESULTS_DIR
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table2.json").write_text(result.to_json(),
                                             encoding="utf-8")

    totals = result.totals()
    baseline_total = totals[REFERENCE]
    best_label, best_total = min(
        ((label, total) for label, total in totals.items()),
        key=lambda item: item[1])

    # Shape claim 1: the muldirect baseline is the worst column overall.
    assert baseline_total == max(totals.values())
    # Shape claim 2: the best strategy wins by a large factor.
    assert baseline_total / best_total > 5.0
    # Shape claim 3: symmetry breaking helps the baseline family.
    assert totals["muldirect/b1"] < baseline_total
    assert totals["muldirect/s1"] < baseline_total

    # Max individual speedup (the paper's 9,499x analogue).
    cells = result.time_cells()
    max_speedup = max(
        cells[instance][REFERENCE] / cells[instance][label]
        for instance in result.instances
        for label in totals if label != REFERENCE
        if cells[instance][label] > 0)
    summary = (f"best strategy: {best_label} "
               f"(total speedup {baseline_total / best_total:.1f}x); "
               f"max individual speedup {max_speedup:.1f}x")
    publish("table2_summary", summary)
    assert max_speedup > 10.0


def test_table2_instance_sizes(benchmark, unroutable_instances):
    """CNF sizes per encoding on the Table-2 instances (the structural
    side of the comparison: variables and clauses per strategy)."""
    encodings = ["muldirect", "ITE-linear", "ITE-log",
                 "ITE-linear-2+muldirect", "muldirect-3+muldirect",
                 "pop", "pop-h", "cmddirect"]

    def measure():
        rows = []
        for instance in unroutable_instances:
            problem = instance.csp.problem
            row = [instance.name,
                   str(problem.num_vertices),
                   str(problem.graph.num_edges),
                   str(instance.width)]
            for name in encodings:
                cnf = get_encoding(name).encode(problem).cnf
                row.append(f"{cnf.num_vars}/{cnf.num_clauses}")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    header = ["circuit", "2-pin nets", "conflicts", "W"] + \
        [f"{name} (vars/clauses)" for name in encodings]
    publish("table2_sizes", render_simple_table(
        "Table 2 instances — CNF sizes per encoding", header, rows))

    # ITE-log always spends the fewest variables; POP undercuts
    # muldirect by one variable per vertex; POP-H's selector+threshold
    # layout is the largest block of the matrix.
    for row in rows:
        sizes = dict(zip(encodings,
                         (int(cell.split("/")[0]) for cell in row[4:])))
        assert sizes["ITE-log"] == min(sizes.values())
        assert sizes["pop"] < sizes["muldirect"]
        assert sizes["cmddirect"] > sizes["muldirect"]
        assert sizes["pop-h"] == max(sizes.values())
