"""Figure 1 — the four ITE trees for a 13-value domain:

(a) ITE-linear, (b) ITE-log, (c) ITE-log-1+ITE-linear,
(d) ITE-log-2+ITE-linear.

Prints each tree's indexing patterns (the figure's content in textual
form), asserts the paper's worked selection patterns, and times
per-vertex encoding construction.
"""

from __future__ import annotations

from repro.bench import render_simple_table
from repro.core import get_encoding
from .conftest import publish

FIGURE1_ENCODINGS = ["ITE-linear", "ITE-log", "ITE-log-1+ITE-linear",
                     "ITE-log-2+ITE-linear"]
DOMAIN = 13


def _pattern_text(pattern):
    if not pattern:
        return "(true)"
    return "·".join((f"i{abs(l) - 1}" if l > 0 else f"¬i{abs(l) - 1}")
                    for l in pattern)


def test_figure1_patterns(benchmark):
    encodings = {}

    def build():
        for name in FIGURE1_ENCODINGS:
            encodings[name] = get_encoding(name).vertex_encoding(DOMAIN)
        return encodings

    benchmark.pedantic(build, rounds=5, iterations=1)

    header = ["value"] + FIGURE1_ENCODINGS
    rows = []
    for value in range(DOMAIN):
        rows.append([f"v{value}"] + [
            _pattern_text(encodings[name].patterns[value])
            for name in FIGURE1_ENCODINGS])
    rows.append(["vars"] + [str(encodings[name].num_vars)
                            for name in FIGURE1_ENCODINGS])
    publish("figure1", render_simple_table(
        "Figure 1 — ITE-tree selection patterns, 13-value domain",
        header, rows))

    # Fig. 1.a: chain with 12 variables.
    linear = encodings["ITE-linear"]
    assert linear.num_vars == 12
    assert linear.patterns[0] == (1,)
    assert linear.patterns[12] == tuple(-v for v in range(1, 13))
    # Fig. 1.b: balanced tree with 4 shared variables.
    assert encodings["ITE-log"].num_vars == 4
    # Fig. 1.d worked example (§4): v4 = i0·¬i1·i2, v5 = i0·¬i1·¬i2·i3.
    fig1d = encodings["ITE-log-2+ITE-linear"]
    assert fig1d.patterns[4] == (1, -2, 3)
    assert fig1d.patterns[5] == (1, -2, -3, 4)
    assert fig1d.patterns[6] == (1, -2, -3, -4)
    # Fig. 1.c: top variable splits 13 into 7 + 6.
    fig1c = encodings["ITE-log-1+ITE-linear"]
    assert fig1c.patterns[0][0] == 1
    assert fig1c.patterns[7][0] == -1
    # ITE encodings never emit structural clauses.
    assert all(not encodings[name].clauses for name in FIGURE1_ENCODINGS)


def test_figure1_tree_shapes(benchmark):
    """Shape summary: variable counts and pattern-length distributions."""

    def summarize():
        summary = {}
        for name in FIGURE1_ENCODINGS:
            vertex = get_encoding(name).vertex_encoding(DOMAIN)
            lengths = sorted(len(p) for p in vertex.patterns)
            summary[name] = (vertex.num_vars, lengths[0], lengths[-1],
                             sum(lengths) / len(lengths))
        return summary

    summary = benchmark.pedantic(summarize, rounds=5, iterations=1)
    rows = [[name, str(v), str(lo), str(hi), f"{avg:.2f}"]
            for name, (v, lo, hi, avg) in summary.items()]
    publish("figure1_shapes", render_simple_table(
        "Figure 1 — tree shapes (13 values)",
        ["encoding", "vars", "min path", "max path", "mean path"], rows))

    assert summary["ITE-linear"][2] == 12      # deepest chain path
    assert summary["ITE-log"][2] == 4          # balanced depth
    assert summary["ITE-log-2+ITE-linear"][2] == 5  # 2 + chain(4)-1
