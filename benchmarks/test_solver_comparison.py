"""§6 solver comparison — the paper found siege_v4 at least 2× faster than
MiniSat on the hard unsatisfiable formulas, while the satisfiable ones
were solved by either "usually in a fraction of a second" with MiniSat
slightly ahead.

We compare our two solver presets (siege_like vs minisat_like) the same
way, on the same instances, with the best single encoding strategy.
"""

from __future__ import annotations

import pytest

from repro.bench import prepare_routable_instance, render_table, sweep
from repro.core import Strategy
from .conftest import bench_circuits, bench_scale, publish

ENCODING = "ITE-linear-2+muldirect"
SOLVER_STRATEGIES = [
    Strategy(ENCODING, "s1", solver="siege_like"),
    Strategy(ENCODING, "s1", solver="minisat_like"),
]


def _column(strategy):
    return strategy.solver


def test_solvers_on_unroutable(benchmark, unroutable_instances):
    def run():
        return sweep(unroutable_instances, SOLVER_STRATEGIES,
                     expect_satisfiable=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # Both strategies share an encoding label, so rebuild cells by solver.
    cells = {
        instance.name: {
            strategy.solver: result.outcome(instance.name, strategy).total_time
            for strategy in SOLVER_STRATEGIES}
        for instance in unroutable_instances}
    publish("solver_unsat", render_table(
        f"Solver presets on unroutable configurations ({ENCODING}/s1)",
        [i.name for i in unroutable_instances],
        ["siege_like", "minisat_like"], cells))

    totals = {solver: sum(row[solver] for row in cells.values())
              for solver in ("siege_like", "minisat_like")}
    publish("solver_unsat_summary",
            f"siege_like total {totals['siege_like']:.2f}s, "
            f"minisat_like total {totals['minisat_like']:.2f}s")
    # Soft shape check: the presets differ measurably on UNSAT instances.
    assert totals["siege_like"] != totals["minisat_like"]


def test_solvers_on_routable(benchmark):
    instances = [prepare_routable_instance(name, scale=bench_scale())
                 for name in bench_circuits()[:4]]

    def run():
        return sweep(instances, SOLVER_STRATEGIES, expect_satisfiable=True)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    per_instance_max = max(
        result.outcome(instance.name, strategy).total_time
        for instance in instances for strategy in SOLVER_STRATEGIES)
    publish("solver_sat_summary",
            f"routable instances: max per-instance time with either solver "
            f"= {per_instance_max:.2f}s")
    # "Usually a fraction of a second" at paper scale; stay lenient here.
    assert per_instance_max < 30.0
