"""§6 portfolios — running several (encoding, symmetry) strategies in
parallel and taking the first answer.

The paper reports, relative to the best single strategy
(ITE-linear-2+muldirect / s1), an extra 1.84× from the 2-strategy
portfolio and 2.30× from the 3-strategy portfolio, computed on the
Table-2 totals.  We reproduce both the analytical (virtual, min-over-
members) figures from measured single-strategy times and a real
multiprocessing first-to-finish run.
"""

from __future__ import annotations

from repro.bench import render_simple_table, sweep
from repro.core import (PORTFOLIO_2, PORTFOLIO_3, Strategy,
                        portfolio_speedup, run_portfolio,
                        virtual_portfolio_time)
from .conftest import publish

REFERENCE = Strategy("ITE-linear-2+muldirect", "s1")
MEMBERS = list(PORTFOLIO_3)  # includes the reference + 2 complements


def test_virtual_portfolio_speedups(benchmark, unroutable_instances):
    def run():
        return sweep(unroutable_instances, MEMBERS,
                     expect_satisfiable=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    times = result.strategy_times()

    speedup_2 = portfolio_speedup(times, list(PORTFOLIO_2), REFERENCE)
    speedup_3 = portfolio_speedup(times, list(PORTFOLIO_3), REFERENCE)
    portfolio_times = virtual_portfolio_time(times, MEMBERS)

    rows = [[instance,
             f"{times[instance][REFERENCE]:.2f}",
             f"{portfolio_times[instance]:.2f}"]
            for instance in result.instances]
    rows.append(["total",
                 f"{sum(times[i][REFERENCE] for i in result.instances):.2f}",
                 f"{sum(portfolio_times.values()):.2f}"])
    publish("portfolio", render_simple_table(
        "Portfolios on unroutable configurations [s]",
        ["circuit", REFERENCE.label, "3-strategy portfolio"], rows))
    publish("portfolio_summary",
            f"2-strategy portfolio speedup {speedup_2:.2f}x "
            f"(paper: 1.84x); 3-strategy {speedup_3:.2f}x (paper: 2.30x)")

    # Shape claims: portfolios never hurt, and adding the third member
    # never loses to the 2-member portfolio.
    assert speedup_2 >= 1.0
    assert speedup_3 >= speedup_2
    assert speedup_3 > 1.0  # some instance prefers a non-reference member


def test_real_portfolio_execution(benchmark, unroutable_instances):
    """First-to-finish multiprocessing run on the hardest instance."""
    instance = unroutable_instances[-1]

    def run():
        return run_portfolio(instance.csp.problem, MEMBERS, timeout=600)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("portfolio_parallel",
            f"{instance.name} @ W={instance.width}: winner "
            f"{result.winner.label} in {result.wall_time:.2f}s wall time "
            f"({result.num_strategies} processes)")
    assert not result.outcome.satisfiable
    assert result.winner in MEMBERS
