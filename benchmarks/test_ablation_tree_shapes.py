"""Ablation — arbitrary ITE tree shapes (paper §3).

"In general, the ITE tree for a CSP variable can have any structure ...
The different structure will result in different probabilities of
selecting a particular domain value."  We compare the two named shapes
(chain and balanced) against randomly generated tree shapes on one
unroutable instance, confirming that (a) every shape is correct, and
(b) shape alone moves solve time.
"""

from __future__ import annotations

import random
import time

from repro.bench import render_simple_table
from repro.core import solve_coloring, Strategy
from repro.core.encodings import (CustomITEScheme, EncodedProblem, ITENode,
                                  Level, build_vertex_encoding)
from repro.core.symmetry import apply_symmetry
from repro.sat import solve
from .conftest import publish


def random_tree(n: int, rng: random.Random):
    """A random-split binary tree over ``n`` leaves with one shared
    indexing variable per depth (so the §3 once-per-path restriction
    holds by construction)."""

    def build(lo: int, hi: int, depth: int):
        if hi - lo == 1:
            return lo
        mid = lo + rng.randint(1, hi - lo - 1)
        return ITENode(depth + 1,
                       build(lo, mid, depth + 1),
                       build(mid, hi, depth + 1))

    return build(0, n, 0)


def test_random_tree_shapes(benchmark, unroutable_instances):
    instance = unroutable_instances[0]
    problem = instance.csp.problem

    def run():
        rows = []
        shapes = [("ITE-linear (chain)", "ITE-linear"),
                  ("ITE-log (balanced)", "ITE-log")]
        for label, name in shapes:
            outcome = solve_coloring(problem, Strategy(name, "s1"))
            assert not outcome.satisfiable
            rows.append([label, str(outcome.num_vars),
                         f"{outcome.solve_time:.3f}"])
        for seed in range(4):
            rng = random.Random(seed)
            scheme = CustomITEScheme(
                lambda n, rng=rng: random_tree(n, rng),
                name=f"ITE-random-{seed}")
            vertex = build_vertex_encoding(problem.num_colors,
                                           [Level(scheme)])
            encoded = EncodedProblem(problem, vertex, scheme.name)
            apply_symmetry(encoded, "s1")
            start = time.perf_counter()
            result = solve(encoded.cnf)
            elapsed = time.perf_counter() - start
            assert not result.satisfiable
            rows.append([scheme.name, str(encoded.cnf.num_vars),
                         f"{elapsed:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_tree_shapes", render_simple_table(
        f"ITE tree shapes on {instance.name} @ W={instance.width} "
        f"(UNSAT, s1)",
        ["tree shape", "CNF vars", "solve [s]"], rows))
    times = [float(row[2]) for row in rows]
    assert max(times) > 0  # and all correct, asserted above
