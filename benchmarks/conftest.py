"""Shared infrastructure for the paper-reproduction benchmarks.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — multiplies benchmark circuit sizes (default 1.0).
  Use e.g. ``0.7`` for a fast smoke pass of every table.
* ``REPRO_BENCH_CIRCUITS`` — comma-separated subset of Table-2 circuit
  names to run (default: all eight).

Every bench prints its paper-style table to stdout (run pytest with ``-s``
to see it live) and also writes it under ``benchmarks/results/`` so the
EXPERIMENTS.md numbers can be traced to files.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import prepare_unroutable_instance
from repro.core import Strategy
from repro.fpga import TABLE2_BENCHMARKS

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_circuits() -> list:
    names = os.environ.get("REPRO_BENCH_CIRCUITS")
    if not names:
        return list(TABLE2_BENCHMARKS)
    chosen = [n.strip() for n in names.split(",") if n.strip()]
    unknown = set(chosen) - set(TABLE2_BENCHMARKS)
    if unknown:
        raise ValueError(f"unknown circuits in REPRO_BENCH_CIRCUITS: {unknown}")
    return chosen


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def unroutable_instances():
    """The eight Table-2 circuits pinned at W_min - 1 (provably UNSAT),
    prepared once per session."""
    scale = bench_scale()
    probe = Strategy("ITE-linear-2+muldirect", "s1")
    return [prepare_unroutable_instance(name, scale=scale, probe=probe)
            for name in bench_circuits()]
