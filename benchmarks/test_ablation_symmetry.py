"""Ablation — isolating the symmetry-breaking contribution (§5).

Table 2 entangles encoding choice with symmetry heuristic.  This ablation
fixes a representative set of encodings and sweeps {none, b1, s1} on a
medium unroutable instance, quantifying how much of the headline speedup
comes from symmetry breaking alone, and how the two heuristics compare.
"""

from __future__ import annotations

from repro.bench import render_table, sweep
from repro.core import Strategy
from .conftest import publish

ENCODINGS = ["muldirect", "ITE-log", "ITE-linear-2+muldirect"]
HEURISTICS = ["none", "b1", "s1", "c1"]


def test_symmetry_ablation(benchmark, unroutable_instances):
    # A medium instance keeps the 3x3 grid affordable with "none" columns.
    instances = unroutable_instances[:5]
    strategies = [Strategy(encoding, heuristic)
                  for encoding in ENCODINGS for heuristic in HEURISTICS]

    def run():
        return sweep(instances, strategies, expect_satisfiable=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_symmetry", render_table(
        "Symmetry ablation — encodings x {none, b1, s1} [s]",
        result.instances, [s.label for s in strategies],
        result.time_cells(), reference_column="muldirect"))

    totals = result.totals()
    lines = []
    for encoding in ENCODINGS:
        none_total = totals[encoding]
        b1_total = totals[f"{encoding}/b1"]
        s1_total = totals[f"{encoding}/s1"]
        lines.append(f"{encoding}: b1 {none_total / b1_total:.1f}x, "
                     f"s1 {none_total / s1_total:.1f}x over no-symmetry")
        # Each heuristic must help each encoding family on the total.
        assert min(b1_total, s1_total) < none_total
    publish("ablation_symmetry_summary", "\n".join(lines))


def test_symmetry_clause_counts(benchmark, unroutable_instances):
    """Symmetry breaking is nearly free in formula size: K-1 vertices get
    at most K-1 short clauses each."""
    from repro.core import get_encoding
    from repro.core.symmetry import apply_symmetry
    instance = unroutable_instances[0]
    problem = instance.csp.problem

    def count():
        added = {}
        for heuristic in ("b1", "s1"):
            encoded = get_encoding("muldirect").encode(problem)
            before = encoded.cnf.num_clauses
            apply_symmetry(encoded, heuristic)
            added[heuristic] = (encoded.cnf.num_clauses - before, before)
        return added

    added = benchmark.pedantic(count, rounds=3, iterations=1)
    for heuristic, (extra, base) in added.items():
        publish(f"ablation_symmetry_clauses_{heuristic}",
                f"{heuristic}: {extra} clauses on top of {base} "
                f"({100.0 * extra / base:.2f}%)")
        assert extra <= (problem.num_colors - 1) * problem.num_colors / 2
        assert extra < 0.05 * base
