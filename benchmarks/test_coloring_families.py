"""Beyond routing — the encodings on classic coloring families.

The paper's stage-2 tooling is generic graph-coloring machinery (§1
contribution 1 explicitly advertises riding the coloring-to-SAT
literature).  This bench runs the headline encodings on two canonical
families outside the FPGA domain:

* **Mycielski graphs** — triangle-free with growing chromatic number:
  clique bounds are useless and refutation needs search, the adversarial
  case for symmetry breaking (no big clique to pin);
* **queen graphs** — dense and massively symmetric, the favourable case.
"""

from __future__ import annotations

from repro.bench import render_table, sweep
from repro.bench.runner import BenchmarkInstance
from repro.coloring import ColoringProblem
from repro.coloring.instances import mycielski_graph, queen_graph
from repro.core import Strategy, solve_coloring
from .conftest import publish

STRATEGIES = [Strategy("muldirect", "none"), Strategy("muldirect", "s1"),
              Strategy("ITE-log", "s1"),
              Strategy("ITE-linear-2+muldirect", "s1")]


def _unsat_cases():
    # (name, graph, K) with K one below the chromatic number.
    return [
        ("mycielski-4", mycielski_graph(4), 3),
        ("mycielski-5", mycielski_graph(5), 4),
        ("queen-5", queen_graph(5), 4),
        ("queen-6", queen_graph(6), 6),
    ]


def test_coloring_families_unsat(benchmark):
    cases = _unsat_cases()

    def run():
        cells = {}
        for name, graph, colors in cases:
            problem = ColoringProblem(graph, colors)
            cells[name] = {}
            for strategy in STRATEGIES:
                outcome = solve_coloring(problem, strategy)
                assert not outcome.satisfiable, (name, strategy.label)
                cells[name][strategy.label] = outcome.total_time
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("coloring_families", render_table(
        "Classic coloring families, K = chi - 1 (UNSAT) [s]",
        [name for name, _, _ in cases],
        [s.label for s in STRATEGIES], cells,
        reference_column="muldirect"))

    totals = {s.label: sum(cells[name][s.label] for name, _, _ in cases)
              for s in STRATEGIES}
    # The structural encodings should not lose to the baseline overall.
    assert min(totals["ITE-log/s1"],
               totals["ITE-linear-2+muldirect/s1"]) <= totals["muldirect"]


def test_coloring_families_sat(benchmark):
    cases = [("mycielski-4", mycielski_graph(4), 4),
             ("queen-5", queen_graph(5), 5)]

    def run():
        results = {}
        for name, graph, colors in cases:
            problem = ColoringProblem(graph, colors)
            outcome = solve_coloring(problem,
                                     Strategy("ITE-linear-2+muldirect", "s1"))
            assert outcome.satisfiable
            assert problem.is_valid_coloring(outcome.coloring)
            results[name] = outcome.total_time
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("coloring_families_sat",
            "; ".join(f"{name}: chi-coloring in {seconds:.3f}s"
                      for name, seconds in results.items()))
