"""Baseline — one-net-at-a-time negotiation vs. SAT (paper §1's contrast).

The paper motivates SAT-based detailed routing with two capabilities the
heuristic routers lack: *proving* unroutability and considering all nets
simultaneously.  This bench quantifies the trade on our instances:

* on routable configurations, negotiation is fast and so is SAT;
* on unroutable configurations, negotiation burns its full iteration
  budget and returns "don't know", while SAT returns a proof.
"""

from __future__ import annotations

import time

from repro.bench import prepare_routable_instance, render_simple_table
from repro.core import Strategy, solve_coloring
from repro.fpga import negotiate_tracks
from .conftest import bench_circuits, bench_scale, publish

STRATEGY = Strategy("ITE-linear-2+muldirect", "s1")


def test_pathfinder_vs_sat_routable(benchmark):
    instances = [prepare_routable_instance(name, scale=bench_scale())
                 for name in bench_circuits()[:4]]

    def run():
        rows = []
        for instance in instances:
            start = time.perf_counter()
            negotiated = negotiate_tracks(instance.csp, max_iterations=300)
            negotiation_time = time.perf_counter() - start
            outcome = solve_coloring(instance.csp.problem, STRATEGY)
            rows.append((instance.name, instance.width, negotiated,
                         negotiation_time, outcome))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for name, width, negotiated, negotiation_time, outcome in rows:
        table.append([name, f"W={width}",
                      "yes" if negotiated.success else "no",
                      f"{negotiation_time:.3f}",
                      f"{outcome.total_time:.3f}"])
        assert outcome.satisfiable
    publish("baseline_routable", render_simple_table(
        "Routable configs: negotiation vs SAT",
        ["circuit", "width", "negotiated?", "negotiation [s]", "SAT [s]"],
        table))
    # Negotiation finds a routing at the SAT-certified minimum width in
    # most cases; require at least half to succeed (it is a heuristic).
    successes = sum(1 for row in rows if row[2].success)
    assert successes >= len(rows) // 2


def test_pathfinder_cannot_prove_unroutability(benchmark,
                                               unroutable_instances):
    instances = unroutable_instances[:4]

    def run():
        rows = []
        for instance in instances:
            start = time.perf_counter()
            negotiated = negotiate_tracks(instance.csp, max_iterations=60)
            negotiation_time = time.perf_counter() - start
            outcome = solve_coloring(instance.csp.problem, STRATEGY)
            rows.append((instance.name, negotiated, negotiation_time,
                         outcome))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for name, negotiated, negotiation_time, outcome in rows:
        # The configurations are provably unroutable: negotiation must
        # fail, and its failure carries no certificate.
        assert not negotiated.success
        assert not outcome.satisfiable
        table.append([name,
                      f"gave up after {negotiated.iterations} iters "
                      f"({negotiation_time:.3f}s)",
                      f"UNSAT proof in {outcome.total_time:.3f}s"])
    publish("baseline_unroutable", render_simple_table(
        "Unroutable configs: negotiation gives up, SAT proves",
        ["circuit", "negotiation", "SAT"], table))
