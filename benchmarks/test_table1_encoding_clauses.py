"""Table 1 — the clause sets of the log / direct / muldirect encodings on
the worked example: two adjacent CSP variables v, w with domain {0, 1, 2}.

Regenerates the table (and asserts the exact clause sets, so this bench
doubles as a fidelity check), then times CNF generation per encoding —
and extends the inventory to *every* registered encoding (the expanded
Table 1 of the rerun in ``docs/reproduction_notes.md``), with the new
families' clause counts asserted against their closed-form sizes.
"""

from __future__ import annotations

from repro.bench import clause_inventory, render_inventory_table, \
    render_simple_table
from repro.coloring import ColoringProblem, Graph
from repro.core import get_encoding
from repro.core.encodings import REGISTRY_ENCODINGS, amo_sizes
from .conftest import publish


def _example_problem() -> ColoringProblem:
    return ColoringProblem(Graph(2, [(0, 1)]), 3)


def _clause_inventory(encoding_name: str):
    encoded = get_encoding(encoding_name).encode(_example_problem())
    vertex = encoded.vertex_encoding
    at_least_one = [c for c in vertex.clauses if all(l > 0 for l in c)]
    others = [c for c in vertex.clauses if not all(l > 0 for l in c)]
    at_most_one = [c for c in others if len(c) == 2 and encoding_name == "direct"]
    exclusions = [c for c in others if c not in at_most_one]
    num_conflicts = encoded.cnf.num_clauses - 2 * len(vertex.clauses)
    return {
        "vars/vertex": encoded.vars_per_vertex,
        "at-least-one": len(at_least_one),
        "at-most-one": len(at_most_one),
        "conflict": num_conflicts,
        "excluded-illegal": len(exclusions),
        "total clauses": encoded.cnf.num_clauses,
    }


def test_table1_layout(benchmark):
    rows = []
    inventories = {}

    def build():
        for name in ("log", "direct", "muldirect"):
            inventories[name] = _clause_inventory(name)
        return inventories

    benchmark.pedantic(build, rounds=3, iterations=1)

    header = ["Encoding", "vars/vertex", "at-least-one", "at-most-one",
              "conflict", "excluded-illegal", "total clauses"]
    for name in ("log", "direct", "muldirect"):
        inv = inventories[name]
        rows.append([name] + [str(inv[h]) for h in header[1:]])
    publish("table1", render_simple_table(
        "Table 1 — clause inventory, 2 adjacent vertices, 3 colors",
        header, rows))

    # Fidelity assertions against the paper's Table 1.
    assert inventories["log"] == {"vars/vertex": 2, "at-least-one": 0,
                                  "at-most-one": 0, "conflict": 3,
                                  "excluded-illegal": 1, "total clauses": 5}
    assert inventories["direct"] == {"vars/vertex": 3, "at-least-one": 1,
                                     "at-most-one": 3, "conflict": 3,
                                     "excluded-illegal": 0,
                                     "total clauses": 11}
    assert inventories["muldirect"] == {"vars/vertex": 3, "at-least-one": 1,
                                        "at-most-one": 0, "conflict": 3,
                                        "excluded-illegal": 0,
                                        "total clauses": 5}


def test_table1_expanded_registry(benchmark):
    """The expanded Table 1: the same worked example (two adjacent
    vertices, K = 5 so the auxiliary-variable families do not
    degenerate) across every registered encoding."""
    problem = ColoringProblem(Graph(2, [(0, 1)]), 5)
    inventories = {}

    def build():
        for name in REGISTRY_ENCODINGS:
            inventories[name] = clause_inventory(
                get_encoding(name).encode(problem))
        return inventories

    benchmark.pedantic(build, rounds=3, iterations=1)
    publish("table1_expanded", render_inventory_table(
        "Table 1 (expanded) — clause inventory, 2 adjacent vertices, "
        "5 colors", inventories))

    # The new families against their closed-form sizes (K = 5, so the
    # ALO clause accounts for 1 of each structural count).
    for name, kind, group in (("seqdirect", "sequential", None),
                              ("cmddirect", "commander", 3),
                              ("bimdirect", "bimander", 2),
                              ("proddirect", "product", None)):
        aux, amo_clauses = amo_sizes(kind, 5, group_size=group)
        assert inventories[name]["aux vars/vertex"] == aux
        assert inventories[name]["structural/vertex"] == amo_clauses + 1
    # POP: K-1 thresholds, K-2 ordering clauses, no auxiliaries.
    assert inventories["pop"]["vars/vertex"] == 4
    assert inventories["pop"]["aux vars/vertex"] == 0
    assert inventories["pop"]["structural/vertex"] == 3
    # POP-H: K selectors + K-1 threshold auxiliaries, 4K-4 clauses.
    assert inventories["pop-h"]["vars/vertex"] == 9
    assert inventories["pop-h"]["aux vars/vertex"] == 4
    assert inventories["pop-h"]["structural/vertex"] == 16
    # Every encoding spends one conflict clause per edge per common
    # color on this single-edge example.
    for name in REGISTRY_ENCODINGS:
        assert inventories[name]["conflict clauses"] == 5


def test_table1_exact_clauses(benchmark):
    """The literal clause sets of Table 1, printed for inspection."""
    problem = _example_problem()

    def clause_sets():
        return {name: sorted(tuple(sorted(c)) for c in
                             get_encoding(name).encode(problem).cnf.clauses)
                for name in ("log", "direct", "muldirect")}

    sets = benchmark.pedantic(clause_sets, rounds=3, iterations=1)
    lines = ["Table 1 — exact clauses (v owns vars 1..b, w owns b+1..2b)",
             "=" * 60]
    for name, clauses in sets.items():
        lines.append(f"{name}:")
        for clause in clauses:
            lines.append("  (" + " v ".join(
                (f"x{l}" if l > 0 else f"-x{-l}") for l in clause) + ")")
    publish("table1_clauses", "\n".join(lines))

    assert sets["muldirect"] == [(-6, -3), (-5, -2), (-4, -1),
                                 (1, 2, 3), (4, 5, 6)]
    assert len(sets["direct"]) == 11
    assert len(sets["log"]) == 5
