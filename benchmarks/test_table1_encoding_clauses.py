"""Table 1 — the clause sets of the log / direct / muldirect encodings on
the worked example: two adjacent CSP variables v, w with domain {0, 1, 2}.

Regenerates the table (and asserts the exact clause sets, so this bench
doubles as a fidelity check), then times CNF generation per encoding.
"""

from __future__ import annotations

from repro.bench import render_simple_table
from repro.coloring import ColoringProblem, Graph
from repro.core import get_encoding
from .conftest import publish


def _example_problem() -> ColoringProblem:
    return ColoringProblem(Graph(2, [(0, 1)]), 3)


def _clause_inventory(encoding_name: str):
    encoded = get_encoding(encoding_name).encode(_example_problem())
    vertex = encoded.vertex_encoding
    at_least_one = [c for c in vertex.clauses if all(l > 0 for l in c)]
    others = [c for c in vertex.clauses if not all(l > 0 for l in c)]
    at_most_one = [c for c in others if len(c) == 2 and encoding_name == "direct"]
    exclusions = [c for c in others if c not in at_most_one]
    num_conflicts = encoded.cnf.num_clauses - 2 * len(vertex.clauses)
    return {
        "vars/vertex": encoded.vars_per_vertex,
        "at-least-one": len(at_least_one),
        "at-most-one": len(at_most_one),
        "conflict": num_conflicts,
        "excluded-illegal": len(exclusions),
        "total clauses": encoded.cnf.num_clauses,
    }


def test_table1_layout(benchmark):
    rows = []
    inventories = {}

    def build():
        for name in ("log", "direct", "muldirect"):
            inventories[name] = _clause_inventory(name)
        return inventories

    benchmark.pedantic(build, rounds=3, iterations=1)

    header = ["Encoding", "vars/vertex", "at-least-one", "at-most-one",
              "conflict", "excluded-illegal", "total clauses"]
    for name in ("log", "direct", "muldirect"):
        inv = inventories[name]
        rows.append([name] + [str(inv[h]) for h in header[1:]])
    publish("table1", render_simple_table(
        "Table 1 — clause inventory, 2 adjacent vertices, 3 colors",
        header, rows))

    # Fidelity assertions against the paper's Table 1.
    assert inventories["log"] == {"vars/vertex": 2, "at-least-one": 0,
                                  "at-most-one": 0, "conflict": 3,
                                  "excluded-illegal": 1, "total clauses": 5}
    assert inventories["direct"] == {"vars/vertex": 3, "at-least-one": 1,
                                     "at-most-one": 3, "conflict": 3,
                                     "excluded-illegal": 0,
                                     "total clauses": 11}
    assert inventories["muldirect"] == {"vars/vertex": 3, "at-least-one": 1,
                                        "at-most-one": 0, "conflict": 3,
                                        "excluded-illegal": 0,
                                        "total clauses": 5}


def test_table1_exact_clauses(benchmark):
    """The literal clause sets of Table 1, printed for inspection."""
    problem = _example_problem()

    def clause_sets():
        return {name: sorted(tuple(sorted(c)) for c in
                             get_encoding(name).encode(problem).cnf.clauses)
                for name in ("log", "direct", "muldirect")}

    sets = benchmark.pedantic(clause_sets, rounds=3, iterations=1)
    lines = ["Table 1 — exact clauses (v owns vars 1..b, w owns b+1..2b)",
             "=" * 60]
    for name, clauses in sets.items():
        lines.append(f"{name}:")
        for clause in clauses:
            lines.append("  (" + " v ".join(
                (f"x{l}" if l > 0 else f"-x{-l}") for l in clause) + ")")
    publish("table1_clauses", "\n".join(lines))

    assert sets["muldirect"] == [(-6, -3), (-5, -2), (-4, -1),
                                 (1, 2, 3), (4, 5, 6)]
    assert len(sets["direct"]) == 11
    assert len(sets["log"]) == 5
