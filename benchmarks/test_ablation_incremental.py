"""Ablation — incremental vs from-scratch channel-width search.

The paper's use-case ("prove W-1 unroutable to certify W optimal")
implies repeated SAT queries on near-identical formulas.  This ablation
compares the plain pipeline (re-encode + fresh solver per width) against
the assumption-based incremental solver (encode once at the greedy upper
bound, persistent learned clauses), on the minimum-width search of several
Table-2 circuits.
"""

from __future__ import annotations

import time

from repro.bench import render_simple_table
from repro.core import Strategy
from repro.core.incremental import IncrementalColoringSolver
from repro.core.pipeline import minimum_colors
from repro.fpga import build_routing_csp, load_routing
from .conftest import bench_circuits, bench_scale, publish

STRATEGY = Strategy("ITE-linear-2+muldirect", "s1")


def test_incremental_width_search(benchmark):
    circuits = bench_circuits()[:5]
    scale = bench_scale()

    def run():
        rows = []
        for name in circuits:
            routing = load_routing(name, scale=scale)
            problem = build_routing_csp(routing, 1).problem

            start = time.perf_counter()
            scratch_width = minimum_colors(problem, STRATEGY)
            scratch_time = time.perf_counter() - start

            start = time.perf_counter()
            incremental = IncrementalColoringSolver(problem, STRATEGY)
            incremental_width = incremental.minimum_colors()
            incremental_time = time.perf_counter() - start

            assert scratch_width == incremental_width
            rows.append([name, str(scratch_width),
                         str(incremental.stats.queries),
                         f"{scratch_time:.3f}", f"{incremental_time:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("ablation_incremental", render_simple_table(
        "Minimum-width search: from-scratch vs incremental [s]",
        ["circuit", "W_min", "queries", "scratch", "incremental"], rows))
    scratch_total = sum(float(row[3]) for row in rows)
    incremental_total = sum(float(row[4]) for row in rows)
    publish("ablation_incremental_summary",
            f"scratch total {scratch_total:.2f}s, incremental total "
            f"{incremental_total:.2f}s "
            f"({scratch_total / incremental_total:.2f}x)")
