"""Baseline — BDDs vs CDCL on routing formulas (paper §1 related work).

Wood & Rutenbar attacked FPGA routability with BDDs and, "because of the
limited scalability of BDDs", could only handle one channel at a time.
This bench reproduces the wall: on progressively larger slices of one
routing instance, BDD construction cost explodes (and hits its node
budget) while the CDCL solver's cost stays flat.
"""

from __future__ import annotations

import time

from repro.bench import render_simple_table
from repro.core import Strategy, get_encoding, solve_coloring
from repro.fpga import build_routing_csp, load_routing
from repro.sat.bdd import BDDLimitExceeded, solve_bdd
from .conftest import bench_scale, publish

NODE_LIMIT = 300_000


def test_bdd_vs_cdcl_scaling(benchmark):
    def run():
        rows = []
        for scale in (0.35, 0.5, 0.65, 0.8):
            routing = load_routing("alu2", scale=bench_scale() * scale)
            csp = build_routing_csp(routing, 3)
            encoded = get_encoding("log").encode(csp.problem)

            start = time.perf_counter()
            try:
                bdd_result = solve_bdd(encoded.cnf, node_limit=NODE_LIMIT)
                bdd_cell = (f"{time.perf_counter() - start:.3f}s "
                            f"({int(bdd_result.stats['bdd_nodes'])} nodes)")
                bdd_answer = bdd_result.satisfiable
            except BDDLimitExceeded:
                bdd_cell = (f"blown up (> {NODE_LIMIT} nodes after "
                            f"{time.perf_counter() - start:.3f}s)")
                bdd_answer = None

            start = time.perf_counter()
            outcome = solve_coloring(csp.problem, Strategy("log", "s1"))
            cdcl_cell = f"{time.perf_counter() - start:.3f}s"
            if bdd_answer is not None:
                assert bdd_answer == outcome.satisfiable
            rows.append([f"alu2 x{scale:.2f}",
                         str(encoded.cnf.num_vars),
                         str(encoded.cnf.num_clauses),
                         bdd_cell, cdcl_cell])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("baseline_bdd", render_simple_table(
        f"BDD (node limit {NODE_LIMIT}) vs CDCL on growing routing slices",
        ["instance", "vars", "clauses", "BDD", "CDCL"], rows))
    # The last (largest) slice must have defeated the BDD baseline while
    # CDCL stayed comfortable.
    assert "blown up" in rows[-1][3]
