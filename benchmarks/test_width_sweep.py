"""Width sweep — the hardness cliff around W_min.

Not a numbered figure in the paper, but the phenomenon behind its
experimental design: instances just *below* the minimum channel width are
the hard UNSAT proofs (Table 2 uses exactly W_min - 1); instances at or
above W_min are easy SAT; and far below W_min the clique contradiction is
shallow again.  This bench traces that curve for one circuit.
"""

from __future__ import annotations

from repro.bench import render_simple_table
from repro.core import Strategy, solve_coloring
from repro.fpga import build_routing_csp, load_routing, minimum_channel_width
from .conftest import bench_scale, publish

STRATEGY = Strategy("ITE-linear-2+muldirect", "s1")
BASELINE = Strategy("muldirect", "none")


def test_width_sweep(benchmark):
    routing = load_routing("C880", scale=bench_scale())

    def run():
        width_min = minimum_channel_width(routing, STRATEGY)
        rows = []
        for width in range(max(1, width_min - 3), width_min + 2):
            problem = build_routing_csp(routing, width).problem
            best = solve_coloring(problem, STRATEGY)
            base = solve_coloring(problem, BASELINE)
            assert best.satisfiable == base.satisfiable
            assert best.satisfiable == (width >= width_min)
            rows.append([f"W={width}",
                         "SAT" if best.satisfiable else "UNSAT",
                         f"{base.total_time:.3f}",
                         f"{best.total_time:.3f}",
                         str(int(base.solver_stats["conflicts"]))])
        return width_min, rows

    width_min, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("width_sweep", render_simple_table(
        f"C880 width sweep (W_min = {width_min})",
        ["width", "answer", "muldirect [s]", "best strategy [s]",
         "baseline conflicts"], rows))

    # The cliff: the hardest row is the UNSAT one right below W_min.
    unsat_rows = [row for row in rows if row[1] == "UNSAT"]
    hardest = max(unsat_rows, key=lambda row: float(row[2]))
    assert hardest[0] == f"W={width_min - 1}"
