"""§6 routable configurations — "most of the encodings had comparable and
very efficient performance when finding solutions for configurations that
were routable".

Runs every Table-2 circuit at its minimum routable width W_min under all
15 encodings (with s1) and checks that the satisfiable instances are
uniformly fast: no encoding is catastrophically slower than the field, in
stark contrast with the unroutable table.
"""

from __future__ import annotations

import pytest

from repro.bench import (prepare_routable_instance, render_table, sweep)
from repro.core import ALL_ENCODINGS, Strategy
from .conftest import bench_circuits, bench_scale, publish

STRATEGIES = [Strategy(encoding, "s1") for encoding in ALL_ENCODINGS]


@pytest.fixture(scope="module")
def routable_instances():
    scale = bench_scale()
    return [prepare_routable_instance(name, scale=scale)
            for name in bench_circuits()]


def test_routable_all_encodings_fast(benchmark, routable_instances):
    def run():
        return sweep(routable_instances, STRATEGIES,
                     expect_satisfiable=True)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    columns = [s.label for s in STRATEGIES]
    publish("routable", render_table(
        "Routable configurations (W = W_min) — total CPU time [s], all "
        "encodings with s1",
        result.instances, columns, result.time_cells()))

    totals = result.totals()
    slowest = max(totals.values())
    fastest = min(totals.values())
    publish("routable_summary",
            f"fastest total {fastest:.2f}s, slowest total {slowest:.2f}s, "
            f"spread {slowest / fastest:.1f}x")
    # "Comparable and very efficient": the spread between encodings on SAT
    # instances stays within ~1.5 orders of magnitude (vs >1000x on UNSAT).
    assert slowest / fastest < 50.0


def test_routable_vs_unroutable_asymmetry(benchmark, routable_instances,
                                          unroutable_instances):
    """SAT instances are much easier than the UNSAT instances one track
    below — the asymmetry that motivates the paper's focus on proving
    unroutability."""
    strategy = Strategy("ITE-linear-2+muldirect", "s1")
    label = strategy.label

    def run():
        sat = sweep(routable_instances, [strategy], expect_satisfiable=True)
        unsat = sweep(unroutable_instances, [strategy],
                      expect_satisfiable=False)
        return sat.totals()[label], unsat.totals()[label]

    sat_total, unsat_total = benchmark.pedantic(run, rounds=1, iterations=1)
    publish("routable_asymmetry",
            f"{label}: routable total {sat_total:.2f}s vs "
            f"unroutable total {unsat_total:.2f}s "
            f"({unsat_total / sat_total:.1f}x harder)")
    assert unsat_total > sat_total
